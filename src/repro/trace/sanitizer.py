"""Online invariant sanitizer for the range-sync protocol (§IV-B).

Validates, on every event as it is emitted, the properties that make the
credit/range/commit protocol preserve sequential memory semantics:

* **credit bound** — outstanding (issued, not-yet-done) credits never
  exceed the episode's ``max_credit_chunks``;
* **range order** — a stream's reported ``[lo, hi)`` ranges are
  well-formed, ordered, and non-overlapping within the uncommitted
  window (ranges of committed chunks leave the window);
* **commit before indirect** — buffered indirect requests never issue
  before their chunk's commit (the paper's two-round-trip rule);
* **done discipline** — every done releases exactly one credit, for a
  chunk that was credited and serviced, at most once, and (for streams
  under range-sync) only after its commit;
* **message inventory** — the per-:class:`MessageType` counts accounted
  on the events reproduce the episode's
  :class:`~repro.llc.rangesync.ProtocolResult` inventory exactly;
* **recovery completeness** — every injected fault is followed by a
  completed recovery episode, and committed + re-executed iterations
  partition the offloaded space (the Fig 7 b/c accounting).

A failed check raises :class:`~repro.trace.events.ProtocolViolation`
carrying the offending event and its track's recent event window.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.noc.message import MessageType
from repro.trace.events import (
    TRACK_PROTOCOL,
    TRACK_RECOVERY,
    EventKind,
    ProtocolViolation,
    TraceEvent,
)

#: Events of recent history kept per track for violation reports.
WINDOW = 16

#: Relative tolerance for the iteration-partition check (float episode
#: accounting sums many discard terms).
_PARTITION_RTOL = 1e-9


class _TrackState:
    """Per-track protocol state machine."""

    __slots__ = (
        "kind", "stream", "window", "params", "outstanding", "credited",
        "serviced", "committed", "done", "uncommitted_ranges",
        "first_range_time", "messages", "faults_fired", "recovery_open",
        "recoveries_done", "closed",
    )

    def __init__(self, kind: str, stream: str) -> None:
        self.kind = kind
        self.stream = stream
        self.window: Deque[TraceEvent] = deque(maxlen=WINDOW)
        self.params: Dict[str, object] = {}
        self.outstanding = 0
        self.credited: set = set()
        self.serviced: set = set()
        self.committed: set = set()
        self.done: set = set()
        #: (lo, hi, chunk) of ranges whose chunk is not yet committed/done.
        self.uncommitted_ranges: List[Tuple[int, int, int]] = []
        self.first_range_time: Dict[int, float] = {}
        self.messages: Dict[MessageType, float] = {}
        self.faults_fired = 0
        self.recovery_open = 0
        self.recoveries_done = 0
        self.closed = False


class ProtocolSanitizer:
    """Consumes the event stream and checks §IV-B invariants online."""

    def __init__(self) -> None:
        self.tracks: Dict[int, _TrackState] = {}
        self.checks = 0
        self.violations: List[ProtocolViolation] = []

    # ------------------------------------------------------------------
    def _fail(self, state: Optional[_TrackState], invariant: str,
              detail: str, event: TraceEvent) -> None:
        raise ProtocolViolation(
            invariant, detail, event=event,
            window=list(state.window) if state is not None else [event])

    def _check(self, state: _TrackState, condition: bool, invariant: str,
               detail: str, event: TraceEvent) -> None:
        self.checks += 1
        if not condition:
            self._fail(state, invariant, detail, event)

    # ------------------------------------------------------------------
    def observe(self, event: TraceEvent) -> None:
        """Validate one event (raises :class:`ProtocolViolation`)."""
        if event.kind is EventKind.STREAM_BEGIN:
            kind = str(event.args.get("track_kind", TRACK_PROTOCOL))
            if event.track in self.tracks:
                self._fail(self.tracks[event.track], "track-unique",
                           f"track {event.track} began twice", event)
            state = _TrackState(kind, event.stream)
            state.params = dict(event.args)
            self.tracks[event.track] = state
            state.window.append(event)
            self._count_messages(state, event)
            return
        state = self.tracks.get(event.track)
        if state is None:
            # Free-standing events (unit-level emission, legacy recovery
            # episodes) carry no track state to validate against.
            return
        state.window.append(event)
        if state.closed:
            self._fail(state, "end-is-final",
                       f"{event.kind.value} after STREAM_END", event)
        self._count_messages(state, event)
        handler = {
            EventKind.CREDIT_ISSUE: self._on_credit,
            EventKind.CHUNK_SERVICE: self._on_service,
            EventKind.RANGE_REPORT: self._on_range,
            EventKind.ALIAS_CHECK: self._on_alias,
            EventKind.COMMIT: self._on_commit,
            EventKind.IND_ISSUE: self._on_indirect,
            EventKind.DONE: self._on_done,
            EventKind.STREAM_END: self._on_end,
            EventKind.FAULT_FIRE: self._on_fault,
            EventKind.RECOVERY_BEGIN: self._on_recovery_begin,
            EventKind.RECOVERY_END: self._on_recovery_end,
        }.get(event.kind)
        if handler is not None:
            handler(state, event)

    # -- message accounting --------------------------------------------
    def _count_messages(self, state: _TrackState,
                        event: TraceEvent) -> None:
        if event.message is not None and event.mcount:
            state.messages[event.message] = state.messages.get(
                event.message, 0.0) + event.mcount

    # -- per-kind checks -----------------------------------------------
    def _on_credit(self, state: _TrackState, event: TraceEvent) -> None:
        self._check(state, event.chunk not in state.credited,
                    "credit-unique",
                    f"chunk {event.chunk} credited twice", event)
        state.credited.add(event.chunk)
        state.outstanding += 1
        limit = state.params.get("max_credit_chunks")
        if limit is not None:
            self._check(
                state, state.outstanding <= int(limit), "credit-bound",
                f"{state.outstanding} credits outstanding exceeds "
                f"max_credit_chunks={limit}", event)

    def _on_service(self, state: _TrackState, event: TraceEvent) -> None:
        self._check(state, event.chunk in state.credited,
                    "service-after-credit",
                    f"chunk {event.chunk} serviced without a credit",
                    event)
        self._check(state, event.chunk not in state.serviced,
                    "service-unique",
                    f"chunk {event.chunk} serviced twice", event)
        state.serviced.add(event.chunk)

    def _on_range(self, state: _TrackState, event: TraceEvent) -> None:
        lo = int(event.args["lo"])
        hi = int(event.args["hi"])
        self._check(state, event.chunk in state.credited,
                    "range-after-credit",
                    f"range for uncredited chunk {event.chunk}", event)
        self._check(state, lo < hi, "range-wellformed",
                    f"empty/inverted range [{lo}, {hi})", event)
        for (plo, phi, pchunk) in state.uncommitted_ranges:
            self._check(
                state, hi <= plo or phi <= lo, "range-nonoverlap",
                f"range [{lo}, {hi}) of chunk {event.chunk} overlaps "
                f"uncommitted [{plo}, {phi}) of chunk {pchunk}", event)
        if state.uncommitted_ranges:
            last_lo = state.uncommitted_ranges[-1][0]
            self._check(
                state, lo >= last_lo, "range-ordered",
                f"range [{lo}, {hi}) reported out of order after "
                f"lo={last_lo}", event)
        state.uncommitted_ranges.append((lo, hi, event.chunk))
        state.first_range_time.setdefault(event.chunk, event.time)

    def _on_alias(self, state: _TrackState, event: TraceEvent) -> None:
        self.checks += 1  # the alias check itself is an invariant probe

    def _on_commit(self, state: _TrackState, event: TraceEvent) -> None:
        self._check(state, bool(state.params.get("needs_commit", True)),
                    "commit-only-under-sync",
                    "commit on a stream that never commits", event)
        self._check(state, event.chunk in state.serviced,
                    "commit-after-service",
                    f"chunk {event.chunk} committed before service",
                    event)
        self._check(state, event.chunk not in state.committed,
                    "commit-unique",
                    f"chunk {event.chunk} committed twice", event)
        state.committed.add(event.chunk)
        state.uncommitted_ranges = [
            r for r in state.uncommitted_ranges if r[2] != event.chunk]

    def _on_indirect(self, state: _TrackState, event: TraceEvent) -> None:
        self._check(state, bool(state.params.get("indirect_commit")),
                    "indirect-declared",
                    "indirect issue on a non-indirect stream", event)
        self._check(
            state, event.chunk in state.committed,
            "indirect-after-commit",
            f"indirect requests for chunk {event.chunk} issued before "
            f"its commit", event)

    def _on_done(self, state: _TrackState, event: TraceEvent) -> None:
        self._check(state, event.chunk in state.credited,
                    "done-after-credit",
                    f"done for uncredited chunk {event.chunk}", event)
        self._check(state, event.chunk not in state.done, "done-unique",
                    f"chunk {event.chunk} done twice — would release two "
                    f"credits", event)
        self._check(state, state.outstanding > 0, "done-releases-credit",
                    "done with no outstanding credit to release", event)
        needs_commit = bool(state.params.get("needs_commit"))
        sync_free = bool(state.params.get("sync_free"))
        if needs_commit and not sync_free:
            self._check(
                state, event.chunk in state.committed,
                "done-after-commit",
                f"chunk {event.chunk} done before its commit", event)
        state.done.add(event.chunk)
        state.outstanding -= 1

    def _on_end(self, state: _TrackState, event: TraceEvent) -> None:
        state.closed = True
        if state.kind == TRACK_PROTOCOL:
            n_chunks = state.params.get("n_chunks")
            if n_chunks is not None:
                self._check(
                    state, len(state.done) == int(n_chunks),
                    "all-chunks-done",
                    f"{len(state.done)}/{n_chunks} chunks done at end",
                    event)
            self._check(state, state.outstanding == 0, "credits-drained",
                        f"{state.outstanding} credits still outstanding "
                        f"at end", event)
            inventory = event.args.get("messages")
            if inventory is not None:
                self._check_inventory(state, inventory, event)
        elif state.kind == TRACK_RECOVERY:
            self._check(
                state, state.recovery_open == 0, "recovery-completes",
                f"{state.recovery_open} recovery episode(s) still open "
                f"at end", event)
            self._check(
                state, state.recoveries_done >= state.faults_fired,
                "fault-recovered",
                f"{state.faults_fired} fault(s) fired but only "
                f"{state.recoveries_done} recovery episode(s) completed",
                event)
            self._check_partition(state, event)

    def _check_inventory(self, state: _TrackState, inventory: Dict,
                         event: TraceEvent) -> None:
        """Traced counts must equal the authoritative inventory exactly."""
        for mtype, expected in inventory.items():
            got = state.messages.get(mtype, 0.0)
            self._check(
                state, got == expected, "message-inventory",
                f"traced {mtype.value} count {got!r} != protocol "
                f"inventory {expected!r}", event)
        for mtype, got in state.messages.items():
            self._check(
                state, mtype in inventory, "message-inventory",
                f"traced {mtype.value} x{got:g} absent from protocol "
                f"inventory", event)

    def _check_partition(self, state: _TrackState,
                         event: TraceEvent) -> None:
        offloaded = event.args.get("offloaded_iterations")
        committed = event.args.get("committed_iterations")
        reexecuted = event.args.get("reexecuted_iterations")
        if offloaded is None or committed is None or reexecuted is None:
            return
        total = float(committed) + float(reexecuted)
        tol = _PARTITION_RTOL * max(abs(float(offloaded)), 1.0)
        self._check(
            state, abs(total - float(offloaded)) <= tol,
            "iteration-partition",
            f"committed {committed:g} + re-executed {reexecuted:g} = "
            f"{total:g} does not partition offloaded {offloaded:g}",
            event)

    def _on_fault(self, state: _TrackState, event: TraceEvent) -> None:
        state.faults_fired += 1

    def _on_recovery_begin(self, state: _TrackState,
                           event: TraceEvent) -> None:
        state.recovery_open += 1

    def _on_recovery_end(self, state: _TrackState,
                         event: TraceEvent) -> None:
        self._check(state, state.recovery_open > 0, "recovery-paired",
                    "recovery end without a matching begin", event)
        state.recovery_open -= 1
        state.recoveries_done += 1

    # ------------------------------------------------------------------
    def finish(self) -> None:
        """End-of-run sweep: no track may be left mid-protocol."""
        for track, state in self.tracks.items():
            if state.closed:
                continue
            last = state.window[-1] if state.window else TraceEvent(
                EventKind.STREAM_BEGIN, 0.0, track, state.stream)
            self._check(
                state, state.recovery_open == 0, "recovery-completes",
                f"track {track} ({state.stream}) ended with "
                f"{state.recovery_open} recovery episode(s) open", last)
            self._check(
                state, state.faults_fired <= state.recoveries_done,
                "fault-recovered",
                f"track {track} ({state.stream}) fired "
                f"{state.faults_fired} fault(s) but completed only "
                f"{state.recoveries_done} recovery episode(s)", last)
