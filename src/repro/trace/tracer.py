"""The trace collector threaded through the protocol simulation.

A :class:`Tracer` is the single object call sites see. It fans each
emitted event into (a) the online :class:`ProtocolSanitizer`, (b) the
:class:`MetricsRegistry`, and (c) an optional retained event list for
Chrome trace export. Tracing is **off by default**: every call site
guards with ``if tracer is not None``, so an untraced run executes zero
trace instructions.

``strict=True`` (the default, and what the test suite uses) re-raises
sanitizer violations immediately; ``strict=False`` collects them on
:attr:`violations` so ``repro trace`` can report every problem in one
pass.

The ``REPRO_TRACE`` environment variable turns tracing on for runs that
did not pass an explicit tracer (the test suite sets it, see
``tests/conftest.py``): any value other than empty/``0`` enables a
strict, sanitizing, metrics-only tracer.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from repro.noc.message import MessageType
from repro.trace.events import (
    TRACK_PROTOCOL,
    EventKind,
    ProtocolViolation,
    TraceEvent,
)
from repro.trace.metrics import MetricsRegistry, TraceMetrics
from repro.trace.sanitizer import ProtocolSanitizer

#: Environment variable enabling tracing for runs without an explicit
#: tracer ("" / "0" / unset → disabled).
ENV_TRACE = "REPRO_TRACE"


def tracing_enabled() -> bool:
    """True when ``$REPRO_TRACE`` asks for implicit tracing."""
    return os.environ.get(ENV_TRACE, "").strip() not in ("", "0")


def tracer_from_env() -> Optional["Tracer"]:
    """A strict metrics-only tracer when ``$REPRO_TRACE`` is set."""
    return Tracer(strict=True, keep_events=False) if tracing_enabled() \
        else None


class Tracer:
    """Collects protocol events; sanitizes and aggregates online."""

    def __init__(self, strict: bool = True, keep_events: bool = False,
                 sanitize: bool = True) -> None:
        self.strict = strict
        self.metrics = MetricsRegistry()
        self.sanitizer: Optional[ProtocolSanitizer] = (
            ProtocolSanitizer() if sanitize else None)
        self.events: Optional[List[TraceEvent]] = (
            [] if keep_events else None)
        self.violations: List[ProtocolViolation] = []
        self.n_events = 0
        self._next_track = 0
        self._first_range: Dict[Tuple[int, int], float] = {}
        self._finished = False

    # ------------------------------------------------------------------
    # Track lifecycle
    # ------------------------------------------------------------------
    def begin_stream(self, stream: str, time: float = 0.0,
                     track_kind: str = TRACK_PROTOCOL,
                     **params: Any) -> int:
        """Open a new track; returns its id for subsequent emits."""
        track = self._next_track
        self._next_track += 1
        self.emit(EventKind.STREAM_BEGIN, time, track, stream,
                  track_kind=track_kind, **params)
        return track

    def end_stream(self, track: int, time: float, stream: str,
                   **args: Any) -> None:
        self.emit(EventKind.STREAM_END, time, track, stream, **args)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, kind: EventKind, time: float, track: int, stream: str,
             chunk: int = -1, message: Optional[MessageType] = None,
             mcount: float = 0.0, **args: Any) -> None:
        event = TraceEvent(kind=kind, time=time, track=track,
                           stream=stream, chunk=chunk, message=message,
                           mcount=mcount, args=args)
        self.n_events += 1
        self._finished = False  # new activity re-arms the final sweep
        if self.events is not None:
            self.events.append(event)
        self._record_metrics(event)
        if self.sanitizer is not None:
            try:
                self.sanitizer.observe(event)
            except ProtocolViolation as violation:
                self.violations.append(violation)
                if self.strict:
                    raise

    def _record_metrics(self, event: TraceEvent) -> None:
        m = self.metrics
        m.count(f"events.{event.kind.value}")
        if event.message is not None and event.mcount:
            m.count(f"messages.{event.message.value}", event.mcount)
        kind = event.kind
        args = event.args
        if kind in (EventKind.CREDIT_ISSUE, EventKind.DONE):
            outstanding = args.get("outstanding")
            if outstanding is not None:
                m.observe("protocol.credit_occupancy", float(outstanding))
        elif kind is EventKind.RANGE_REPORT:
            self._first_range.setdefault((event.track, event.chunk),
                                         event.time)
        elif kind is EventKind.COMMIT:
            first = self._first_range.pop((event.track, event.chunk),
                                          None)
            if first is not None:
                m.observe("protocol.range_to_commit_cycles",
                          event.time - first)
        elif kind is EventKind.CHUNK_SERVICE:
            start = args.get("start")
            if start is not None:
                m.observe("protocol.chunk_service_cycles",
                          event.time - float(start))
        elif kind is EventKind.RECOVERY_END:
            if "cycles" in args:
                m.observe("recovery.cycles", float(args["cycles"]))
            if "discarded_iterations" in args:
                m.observe("recovery.discarded_iterations",
                          float(args["discarded_iterations"]))
        elif kind is EventKind.FAULT_FIRE:
            site = args.get("site")
            if site is not None:
                m.count(f"faults.{site}")

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Run end-of-trace sanitizer sweeps (idempotent)."""
        if self._finished:
            return
        self._finished = True
        if self.sanitizer is not None:
            try:
                self.sanitizer.finish()
            except ProtocolViolation as violation:
                self.violations.append(violation)
                if self.strict:
                    raise
            self.metrics.count("sanitizer.checks", 0.0)
            self.metrics.counters["sanitizer.checks"] = float(
                self.sanitizer.checks)

    @property
    def ok(self) -> bool:
        return not self.violations

    def snapshot(self) -> TraceMetrics:
        """Immutable metrics snapshot for ``SimResult.trace``."""
        return self.metrics.snapshot(
            n_events=self.n_events, n_tracks=self._next_track,
            violations=len(self.violations))
