"""Near-stream function outlining and micro-op accounting (§III-A/B).

For every stream with assigned computation, build the outlined
:class:`~repro.isa.stream.NearStreamFunction` (memory-free, stackless, with
``s_load``/``s_store``/``s_step`` communication). Then produce the micro-op
ledger the evaluation depends on:

* per stream: arithmetic micro-ops absorbed, memory micro-ops replaced, and
  stream steps per kernel run;
* residual: compute/memory/control micro-ops that stay in the core.

The accounting model charges the baseline (no streams) 2 micro-ops per memory
access (address generation + the access itself) and the statement's declared
``ops`` for arithmetic — the standard RISC-decomposition the paper's
"committed micro ops" breakdowns use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compiler.assign import Assignment
from repro.compiler.ir import Atomic, BinOp, Kernel, Load, Reduce, Store
from repro.compiler.recognize import RecognizedStream
from repro.isa.instructions import UopKind
from repro.isa.pattern import ComputeKind
from repro.isa.stream import NearStreamFunction

# Baseline micro-ops per memory access: address generation + access.
MEM_UOPS = 2
# Intrinsic update op of an RMW/atomic (the add/min/cas itself).
RMW_INTRINSIC_OPS = 1


@dataclass
class StreamCost:
    """Per-kernel-run micro-op ledger of one stream."""

    sid: int
    steps: float                  # stream advances per kernel run
    mem_uops: float               # baseline memory uops the stream replaces
    compute_uops: float           # arithmetic absorbed into the stream
    uop_kind: UopKind             # which Fig 1a/11 bar this stream stacks into
    function: Optional[NearStreamFunction]
    core_consumes: bool           # residual core code reads the stream's data


@dataclass
class OutlineResult:
    stream_costs: Dict[int, StreamCost] = field(default_factory=dict)
    residual_compute_uops: float = 0.0
    residual_mem_uops: float = 0.0
    control_uops: float = 0.0


def _uop_kind_for(stream: RecognizedStream, kernel: Kernel) -> UopKind:
    if stream.compute is ComputeKind.REDUCE:
        return UopKind.STREAM_REDUCE
    if stream.compute is ComputeKind.RMW:
        if stream.atomic_op is not None:
            return UopKind.STREAM_ATOMIC
        return UopKind.STREAM_UPDATE
    if stream.compute is ComputeKind.STORE:
        return UopKind.STREAM_STORE
    return UopKind.STREAM_LOAD


def _function_for(kernel: Kernel, stream: RecognizedStream,
                  assignment: Assignment) -> Optional[NearStreamFunction]:
    absorbed = assignment.absorbed.get(stream.sid, [])
    ops = 0
    latency = 0
    simd = False
    for idx in absorbed:
        stmt = kernel.body[idx]
        if isinstance(stmt, BinOp):
            ops += stmt.ops
            latency += stmt.latency
            simd = simd or stmt.simd
        elif isinstance(stmt, Reduce):
            ops += stmt.ops
            latency += stmt.latency
            simd = simd or stmt.simd
    if stream.compute is ComputeKind.RMW:
        ops += RMW_INTRINSIC_OPS
        latency += 1
    if stream.compute is ComputeKind.REDUCE:
        reduce_stmt = kernel.body[stream.stmt_indices[0]]
        assert isinstance(reduce_stmt, Reduce)
        ops += reduce_stmt.ops
        latency += reduce_stmt.latency
        simd = simd or reduce_stmt.simd
    if ops == 0:
        return None
    output = assignment.load_output_bytes.get(stream.sid, stream.element_bytes)
    return NearStreamFunction(name=f"{stream.name}_fn", ops=ops,
                              latency=latency, simd=simd, output_bytes=output)


def outline(kernel: Kernel, streams: List[RecognizedStream],
            assignment: Assignment) -> OutlineResult:
    """Build functions and the micro-op ledger."""
    result = OutlineResult()
    absorbed_all = assignment.absorbed_stmts()

    for stream in streams:
        mem_uops = 0.0
        for idx in stream.stmt_indices:
            stmt = kernel.body[idx]
            if isinstance(stmt, (Load, Store)):
                mem_uops += MEM_UOPS * kernel.exec_count(stmt)
            elif isinstance(stmt, Atomic):
                mem_uops += MEM_UOPS * kernel.exec_count(stmt)
        compute_uops = 0.0
        for idx in assignment.absorbed.get(stream.sid, []):
            stmt = kernel.body[idx]
            compute_uops += stmt.ops * kernel.exec_count(stmt)
        if stream.compute is ComputeKind.RMW:
            compute_uops += RMW_INTRINSIC_OPS * stream.trips_per_kernel
        if stream.compute is ComputeKind.REDUCE:
            reduce_stmt = kernel.body[stream.stmt_indices[0]]
            compute_uops += reduce_stmt.ops * kernel.exec_count(reduce_stmt)
        result.stream_costs[stream.sid] = StreamCost(
            sid=stream.sid,
            steps=stream.trips_per_kernel,
            mem_uops=mem_uops,
            compute_uops=compute_uops,
            uop_kind=_uop_kind_for(stream, kernel),
            function=_function_for(kernel, stream, assignment),
            core_consumes=assignment.core_consumes.get(stream.sid, False),
        )

    stream_stmts = set()
    for stream in streams:
        stream_stmts.update(stream.stmt_indices)
    for idx, stmt in enumerate(kernel.body):
        if idx in absorbed_all or idx in stream_stmts:
            continue
        count = kernel.exec_count(stmt)
        if isinstance(stmt, (Load, Store, Atomic)):
            result.residual_mem_uops += MEM_UOPS * count
            if isinstance(stmt, Atomic):
                result.residual_compute_uops += RMW_INTRINSIC_OPS * count
        elif isinstance(stmt, (BinOp, Reduce)):
            result.residual_compute_uops += stmt.ops * count
    result.control_uops = kernel.control_uops_per_iter * kernel.total_iterations
    return result
