"""Sync-free and fully-decoupled-loop transforms (§V).

With the ``s_sync_free`` pragma the programmer guarantees streams in the
region never alias, which

* drops range-sync control messages (commit/range/indirect-range traffic);
* lets offloaded streams commit ahead of the core;
* and, when *every* memory access and computation of an inner loop is
  captured by streams whose parameters come only from outer streams or
  loop-invariants, lets the compiler delete the inner loop entirely — the
  "fully decoupled loop", enabling SE_core to advance several instances of
  the nested streams simultaneously (the paper shows 3).

This pass only *detects and records* the opportunities; whether they are
used is an execution-mode decision (NS_no-sync / NS_decouple).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.compiler.assign import Assignment
from repro.compiler.ir import Kernel
from repro.compiler.recognize import RecognizedStream

# How many instances of fully decoupled nested streams SE_core advances
# simultaneously (Figure 8 shows 3 concurrent instances).
DECOUPLED_CONCURRENCY = 3


@dataclass
class DecoupleResult:
    sync_free: bool
    fully_decoupled: bool       # pragma present AND structurally decouplable
    decouple_ready: bool        # structurally decouplable (mode may supply
                                # the pragma, e.g. the NS_decouple runs)
    concurrency: int
    inner_captured: bool        # all inner-loop work captured by streams
    params_from_streams: bool   # inner stream params come from outer streams


def analyze_decoupling(kernel: Kernel, streams: List[RecognizedStream],
                       assignment: Assignment) -> DecoupleResult:
    """Decide whether the kernel's inner loop can be fully decoupled."""
    sync_free = kernel.sync_free
    inner_captured = not assignment.residual_stmts and not any(
        assignment.core_consumes.get(s.sid, False) for s in streams)
    # Inner stream parameters must come from outer streams or loop-invariant
    # data. In our IR this holds when every stream's base is another stream
    # or an affine pattern (configured with loop-invariant bounds).
    params_ok = True
    sids = {s.sid for s in streams}
    for stream in streams:
        if stream.base_sid is not None and stream.base_sid not in sids:
            params_ok = False
    ready = bool(inner_captured and params_ok and len(kernel.loops) >= 1)
    fully_decoupled = bool(sync_free and ready)
    return DecoupleResult(
        sync_free=sync_free,
        fully_decoupled=fully_decoupled,
        decouple_ready=ready,
        concurrency=DECOUPLED_CONCURRENCY if ready else 1,
        inner_captured=inner_captured,
        params_from_streams=params_ok,
    )
