"""The compiled artifact: :class:`StreamProgram`.

``compile_kernel`` runs recognize -> assign -> outline -> decouple and packs
the results. The program knows, per kernel run:

* the validated :class:`~repro.isa.stream.StreamGraph`;
* per-stream micro-op ledgers (memory uops replaced, compute absorbed,
  steps, the outlined function, whether the core consumes the data);
* residual core work and control overhead;
* transform flags (sync-free, fully-decoupled).

It also exposes the Fig 1(a) breakdown — fraction of dynamic micro-ops
associated with streams by category — directly from the ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compiler.assign import Assignment, assign
from repro.compiler.decouple import DecoupleResult, analyze_decoupling
from repro.compiler.ir import Kernel
from repro.compiler.outline import OutlineResult, StreamCost, outline
from repro.compiler.recognize import RecognizedStream, recognize
from repro.isa.instructions import UopCounts, UopKind
from repro.isa.pattern import AddressPatternKind, ComputeKind
from repro.isa.stream import Stream, StreamGraph


@dataclass
class StreamProgram:
    """Everything downstream consumers need about one compiled kernel."""

    kernel: Kernel
    graph: StreamGraph
    recognized: Dict[int, RecognizedStream]
    costs: Dict[int, StreamCost]
    residual_compute_uops: float
    residual_mem_uops: float
    control_uops: float
    decouple: DecoupleResult

    # ------------------------------------------------------------------
    # Micro-op breakdowns (Fig 1a / Fig 11)
    # ------------------------------------------------------------------
    def baseline_uops(self) -> UopCounts:
        """Micro-ops of the original (stream-less) program per kernel run,
        categorized by the stream each would associate with."""
        counts = UopCounts.zero()
        for cost in self.costs.values():
            counts.add(cost.uop_kind, cost.mem_uops)
            kind = (UopKind.STREAM_REDUCE
                    if cost.uop_kind is UopKind.STREAM_REDUCE
                    else UopKind.STREAM_COMPUTE)
            counts.add(kind, cost.compute_uops)
        counts.add(UopKind.CORE_COMPUTE, self.residual_compute_uops)
        counts.add(UopKind.CORE_MEMORY, self.residual_mem_uops)
        counts.add(UopKind.CONTROL, self.control_uops)
        return counts

    def stream_fraction(self) -> float:
        """Fraction of dynamic micro-ops associated with streams (Fig 1a)."""
        return self.baseline_uops().stream_fraction()

    def total_baseline_uops(self) -> float:
        return self.baseline_uops().total()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def stream(self, sid: int) -> Stream:
        return self.graph.stream(sid)

    def streams_with_compute(self) -> List[Stream]:
        return [s for s in self.graph if s.has_computation
                or s.compute in (ComputeKind.STORE,)]

    @property
    def memory_streams(self) -> List[Stream]:
        return [s for s in self.graph
                if not self.recognized[s.sid].memory_free]

    def cost(self, sid: int) -> StreamCost:
        return self.costs[sid]


def _to_isa_stream(rec: RecognizedStream, assignment: Assignment,
                   cost: StreamCost,
                   all_recognized: Dict[int, RecognizedStream]) -> Stream:
    deps = list(assignment.value_deps.get(rec.sid, []))
    for dep in rec.value_dep_sids:
        if dep not in deps:
            deps.append(dep)
    # Outer streams (strictly fewer steps) are configuration-time inputs;
    # same-rate streams forward a value per element.
    value_deps = []
    config_deps = []
    for dep in deps:
        dep_rec = all_recognized.get(dep)
        if dep_rec is not None \
                and dep_rec.trips_per_kernel < rec.trips_per_kernel:
            config_deps.append(dep)
        else:
            value_deps.append(dep)
    return Stream(
        sid=rec.sid,
        name=rec.name,
        pattern=rec.pattern,
        compute=rec.compute,
        function=cost.function,
        base_stream=rec.base_sid,
        value_deps=tuple(value_deps),
        config_input_deps=tuple(config_deps),
        self_dependent=rec.self_dependent,
        region=rec.region,
        element_bytes=rec.element_bytes,
        known_length=rec.known_length,
    )


def compile_kernel(kernel: Kernel) -> StreamProgram:
    """Run the full compiler pipeline on one kernel."""
    recognized = recognize(kernel)
    assignment = assign(kernel, recognized)
    outlined = outline(kernel, recognized, assignment)
    decouple = analyze_decoupling(kernel, recognized, assignment)
    rec_by_sid = {r.sid: r for r in recognized}
    streams = [
        _to_isa_stream(rec, assignment, outlined.stream_costs[rec.sid],
                       rec_by_sid)
        for rec in recognized
    ]
    graph = StreamGraph(streams)
    return StreamProgram(
        kernel=kernel,
        graph=graph,
        recognized={r.sid: r for r in recognized},
        costs=outlined.stream_costs,
        residual_compute_uops=outlined.residual_compute_uops,
        residual_mem_uops=outlined.residual_mem_uops,
        control_uops=outlined.control_uops,
        decouple=decouple,
    )
