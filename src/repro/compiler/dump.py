"""Human-readable dumps of compiled stream programs.

``dump_program`` renders a :class:`~repro.compiler.program.StreamProgram`
the way the paper's figures draw stream dependence graphs (Figs 3/4/8):
one line per stream with its pattern, compute type, dependences and
outlined function, followed by the micro-op ledger and transform flags.
Used by ``python -m repro compile`` and handy when writing new kernels.
"""

from __future__ import annotations

from typing import List

from repro.compiler.program import StreamProgram
from repro.isa.instructions import UopKind
from repro.isa.pattern import (
    AddressPatternKind,
    AffinePattern,
    ComputeKind,
)

_KIND_GLYPH = {
    AddressPatternKind.AFFINE: "affine",
    AddressPatternKind.INDIRECT: "indirect",
    AddressPatternKind.POINTER_CHASE: "ptr-chase",
}

_COMPUTE_GLYPH = {
    ComputeKind.LOAD: "load",
    ComputeKind.STORE: "store",
    ComputeKind.RMW: "rmw",
    ComputeKind.REDUCE: "reduce",
}


def _pattern_text(stream) -> str:
    pattern = stream.pattern
    if isinstance(pattern, AffinePattern):
        dims = "x".join(str(l) for l in pattern.lengths)
        strides = ",".join(str(s) for s in pattern.strides)
        return f"affine[{dims}] strides=({strides})"
    if stream.kind is AddressPatternKind.INDIRECT:
        return f"indirect scale={pattern.scale} off={pattern.offset}"
    return f"ptr-chase next@{pattern.next_offset}"


def dump_program(program: StreamProgram) -> str:
    """Render a compiled kernel as text."""
    lines: List[str] = []
    kernel = program.kernel
    loops = " > ".join(
        f"{loop.var}[{loop.trip if loop.trip is not None else '?'}]"
        for loop in kernel.loops)
    lines.append(f"kernel {kernel.name}  loops: {loops}"
                 + ("  #pragma s_sync_free" if kernel.sync_free else ""))
    lines.append("")
    lines.append("streams:")
    for stream in program.graph.topological_order():
        rec = program.recognized[stream.sid]
        parts = [f"  s{stream.sid:<2} {stream.name:<16}"
                 f"{_COMPUTE_GLYPH[stream.compute]:<7}"
                 f"{_pattern_text(stream)}"]
        if rec.memory_free:
            parts.append("(memory-free)")
        if stream.base_stream is not None:
            parts.append(f"base->s{stream.base_stream}")
        if stream.value_deps:
            deps = ",".join(f"s{d}" for d in stream.value_deps)
            parts.append(f"values<-{deps}")
        if stream.config_input_deps:
            deps = ",".join(f"s{d}" for d in stream.config_input_deps)
            parts.append(f"config<-{deps}")
        if stream.function is not None:
            fn = stream.function
            parts.append(f"fn[{fn.ops}ops/{fn.latency}cyc"
                         + ("/simd" if fn.simd else "")
                         + f"->{fn.output_bytes}B]")
        if rec.operands_ineligible:
            parts.append("!ineligible-operands")
        lines.append(" ".join(parts))

    lines.append("")
    lines.append("micro-op ledger (per kernel run):")
    uops = program.baseline_uops()
    for kind in UopKind:
        value = uops.get(kind)
        if value:
            lines.append(f"  {kind.value:<16}{value:>14.0f}")
    lines.append(f"  stream-associated: {program.stream_fraction():.1%}")

    decouple = program.decouple
    lines.append("")
    lines.append(
        f"transforms: sync_free={decouple.sync_free} "
        f"decouple_ready={decouple.decouple_ready} "
        f"fully_decoupled={decouple.fully_decoupled} "
        f"concurrency={decouple.concurrency}")
    return "\n".join(lines)
