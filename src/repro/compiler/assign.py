"""Computation-to-stream assignment (§III-B heuristics).

Given the recognized streams, decide which arithmetic moves with which
stream, using the paper's per-compute-type heuristics:

* **Store / RMW** — backward slice from the stored value through BinOps;
  loads feeding the slice become *value dependences* (multi-operand store),
  sliced BinOps are absorbed into the stream's near-stream function.
* **Reduce** — the same backward slice from the reduction input.
* **Load** — forward BFS over a load's users looking for a *closure* (no
  outside users except the final instruction); absorb when the final value is
  smaller than the stream element (traffic reduction) or feeds only streams.

Assignments that would create an ineligible graph (arbitrary value operands
on an indirect/pointer stream, §II-B) are rejected and the computation stays
in the core — matching the paper's fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.compiler.ir import (
    Atomic,
    BinOp,
    Kernel,
    Load,
    Reduce,
    Statement,
    Store,
)
from repro.compiler.recognize import RecognizedStream
from repro.isa.pattern import AddressPatternKind, ComputeKind


@dataclass
class Assignment:
    """Result of the assignment pass."""

    absorbed: Dict[int, List[int]] = field(default_factory=dict)   # sid -> stmt idxs
    value_deps: Dict[int, List[int]] = field(default_factory=dict)  # sid -> sids
    residual_stmts: List[int] = field(default_factory=list)
    core_consumes: Dict[int, bool] = field(default_factory=dict)    # sid -> bool
    load_output_bytes: Dict[int, int] = field(default_factory=dict)

    def absorbed_stmts(self) -> Set[int]:
        out: Set[int] = set()
        for stmts in self.absorbed.values():
            out.update(stmts)
        return out


class Assigner:
    """Single-use pass object holding the def/use maps and results."""

    def __init__(self, kernel: Kernel,
                 streams: List[RecognizedStream]) -> None:
        self.kernel = kernel
        self.streams = streams
        self.by_sid = {s.sid: s for s in streams}
        self.defs, self.uses = kernel.defs_and_uses()
        self.stream_of_var: Dict[str, RecognizedStream] = {}
        self.stream_stmts: Set[int] = set()
        for stream in streams:
            if stream.produced_var:
                self.stream_of_var[stream.produced_var] = stream
            self.stream_stmts.update(stream.stmt_indices)
        self.result = Assignment()
        self._taken: Set[int] = set()  # BinOp stmt indices already absorbed

    # ------------------------------------------------------------------
    def run(self) -> Assignment:
        # Address-computation slices first (they belong to the SE's address
        # generation), then stores/RMW (they subsume producer loads), then
        # reductions, then standalone load closures.
        self._assign_address_slices()
        for stream in self.streams:
            if stream.compute in (ComputeKind.STORE, ComputeKind.RMW) \
                    and stream.stored_var:
                self._assign_backward(stream, stream.stored_var)
        for stream in self.streams:
            if stream.compute is ComputeKind.REDUCE:
                self._assign_reduce(stream)
        for stream in self.streams:
            if stream.compute is ComputeKind.LOAD:
                self._assign_load_closure(stream)
        self._finalize()
        return self.result

    # ------------------------------------------------------------------
    # Address-computation slices
    # ------------------------------------------------------------------
    def _assign_address_slices(self) -> None:
        """BinOps that only feed a stream's address (indirect index vars,
        nested affine bases) are the SE's address generation: absorb them
        into the consuming stream with no eligibility constraints — their
        producers are by construction the stream's base chain."""
        for stream in self.streams:
            for idx in stream.stmt_indices:
                stmt = self.kernel.body[idx]
                access = getattr(stmt, "access", None)
                if access is None:
                    continue
                index_var = getattr(access, "index_var", None) \
                    or getattr(access, "base_var", None)
                if index_var is None:
                    continue
                slice_stmts = self._address_slice(index_var, idx)
                if slice_stmts:
                    self.result.absorbed.setdefault(stream.sid, []).extend(
                        sorted(slice_stmts))
                    self._taken.update(slice_stmts)

    def _address_slice(self, var: str, consumer_idx: int) -> Set[int]:
        """BinOps computing ``var`` whose results feed only addresses."""
        slice_stmts: Set[int] = set()
        worklist = [var]
        while worklist:
            current = worklist.pop()
            if current.startswith("$") or current in self.stream_of_var:
                continue
            def_idx = self.defs.get(current)
            if def_idx is None or def_idx in self._taken:
                return set()
            stmt = self.kernel.body[def_idx]
            if not isinstance(stmt, BinOp):
                return set()
            if def_idx in slice_stmts:
                continue
            slice_stmts.add(def_idx)
            worklist.extend(stmt.srcs)
        if not self._is_closed(slice_stmts, {consumer_idx}):
            return set()
        return slice_stmts

    # ------------------------------------------------------------------
    # Backward slices for store / RMW / reduce
    # ------------------------------------------------------------------
    def _assign_backward(self, stream: RecognizedStream, root_var: str) -> None:
        slice_stmts, dep_streams, ok = self._backward_slice(stream, root_var)
        if not ok:
            stream.operands_ineligible = True
            return
        if not self._deps_eligible(stream, dep_streams):
            stream.operands_ineligible = True
            return
        if any(self._reaches(dep, stream.sid) for dep in dep_streams):
            # The operand transitively depends on this stream (e.g. an
            # indirect load whose index comes from the RMW's own location):
            # a true cycle through memory, not offloadable.
            stream.operands_ineligible = True
            return
        self.result.absorbed.setdefault(stream.sid, []).extend(
            sorted(slice_stmts))
        self._taken.update(slice_stmts)
        deps = self.result.value_deps.setdefault(stream.sid, [])
        for dep in dep_streams:
            if dep.sid not in deps and dep.sid != stream.sid:
                deps.append(dep.sid)

    def _assign_reduce(self, stream: RecognizedStream) -> None:
        reduce_stmt = self.kernel.body[stream.stmt_indices[0]]
        assert isinstance(reduce_stmt, Reduce)
        if not reduce_stmt.associative and stream.pattern.kind in (
                AddressPatternKind.INDIRECT,):
            # §IV-C: indirect reductions must be associative.
            return
        self._assign_backward(stream, reduce_stmt.src)

    def _backward_slice(self, stream: RecognizedStream, root_var: str
                        ) -> Tuple[Set[int], List[RecognizedStream], bool]:
        """Slice BinOps computing ``root_var``; returns (stmts, deps, ok)."""
        slice_stmts: Set[int] = set()
        dep_streams: List[RecognizedStream] = []
        if root_var.startswith("$"):
            return set(), [], True  # constant operand: trivially offloadable
        worklist = [root_var]
        seen_vars: Set[str] = set()
        while worklist:
            var = worklist.pop()
            if var in seen_vars or var.startswith("$"):
                continue
            seen_vars.add(var)
            if var in self.stream_of_var:
                producer = self.stream_of_var[var]
                if producer.sid != stream.sid:
                    dep_streams.append(producer)
                continue
            if var in {loop.var for loop in self.kernel.loops}:
                continue  # loop indices are generated by the stream itself
            def_idx = self.defs.get(var)
            if def_idx is None:
                return set(), [], False
            stmt = self.kernel.body[def_idx]
            if not isinstance(stmt, BinOp):
                return set(), [], False  # atomic results etc.: keep in core
            if def_idx in self._taken:
                return set(), [], False  # already moved with another stream
            slice_stmts.add(def_idx)
            worklist.extend(stmt.srcs)
        if not self._is_closed(slice_stmts, allowed_consumers=set(
                stream.stmt_indices)):
            return set(), [], False
        return slice_stmts, dep_streams, True

    def _is_closed(self, slice_stmts: Set[int],
                   allowed_consumers: Set[int]) -> bool:
        """Every sliced BinOp's users must be inside the slice or consumer."""
        for idx in slice_stmts:
            stmt = self.kernel.body[idx]
            assert isinstance(stmt, BinOp)
            for use_idx in self.uses.get(stmt.dst, []):
                if use_idx not in slice_stmts \
                        and use_idx not in allowed_consumers:
                    return False
        return True

    def _deps_eligible(self, stream: RecognizedStream,
                       deps: List[RecognizedStream]) -> bool:
        """§II-B: a data-dependent-bank stream cannot take arbitrary
        per-element value operands — only its base stream. Streams that step
        strictly less often (outer-loop streams) are fine: their values are
        loop-invariant within the inner loop and are supplied at nested
        stream configuration time (§III-A)."""
        if stream.pattern.kind is AddressPatternKind.AFFINE:
            return True
        allowed = {stream.base_sid, stream.sid}
        allowed.update(stream.value_dep_sids)
        allowed.update(self._base_chain(stream))
        for dep in deps:
            if dep.sid in allowed:
                continue
            if dep.trips_per_kernel < stream.trips_per_kernel:
                continue  # outer-stream config input
            return False
        return True

    def _reaches(self, stream: RecognizedStream, target_sid: int,
                 _seen: Set[int] = None) -> bool:
        """True if ``stream`` transitively depends on ``target_sid`` via
        base-stream or already-assigned value edges."""
        if _seen is None:
            _seen = set()
        if stream.sid in _seen:
            return False
        _seen.add(stream.sid)
        deps = set(self.result.value_deps.get(stream.sid, []))
        deps.update(stream.value_dep_sids)
        if stream.base_sid is not None:
            deps.add(stream.base_sid)
        if target_sid in deps:
            return True
        return any(self._reaches(self.by_sid[d], target_sid, _seen)
                   for d in deps if d in self.by_sid and d != stream.sid)

    def _base_chain(self, stream: RecognizedStream) -> Set[int]:
        """All streams reachable through base-stream edges (value producers
        along the address chain are eligible operands, e.g. C[A[i]]+=A[i])."""
        chain: Set[int] = set()
        current = stream.base_sid
        while current is not None and current not in chain:
            chain.add(current)
            current = self.by_sid[current].base_sid
        return chain

    # ------------------------------------------------------------------
    # Forward closures for load streams
    # ------------------------------------------------------------------
    def _assign_load_closure(self, stream: RecognizedStream) -> None:
        if stream.produced_var is None:
            return
        closure, final_idx = self._forward_closure(stream.produced_var)
        if not closure or final_idx is None:
            return
        final = self.kernel.body[final_idx]
        assert isinstance(final, BinOp)
        # Heuristic: absorb when the final value is smaller than the element
        # ("fewer bits total in live outputs").
        if final.bytes >= stream.element_bytes:
            return
        # Extra feeds: the closure may read other streams' data.
        dep_streams = self._closure_deps(closure, stream)
        if dep_streams is None:
            return
        if not self._deps_eligible(stream, dep_streams):
            return
        self.result.absorbed.setdefault(stream.sid, []).extend(sorted(closure))
        self._taken.update(closure)
        self.result.load_output_bytes[stream.sid] = final.bytes
        deps = self.result.value_deps.setdefault(stream.sid, [])
        for dep in dep_streams:
            if dep.sid not in deps and dep.sid != stream.sid:
                deps.append(dep.sid)
        # The core now consumes the *final* var, not the raw stream data.
        stream.produced_var = final.dst

    def _forward_closure(self, var: str) -> Tuple[Set[int], Optional[int]]:
        """BFS users of ``var`` over BinOps; returns (closure, final stmt)."""
        closure: Set[int] = set()
        frontier = [var]
        while frontier:
            current = frontier.pop()
            for use_idx in self.uses.get(current, []):
                stmt = self.kernel.body[use_idx]
                if not isinstance(stmt, BinOp) or use_idx in self._taken:
                    continue
                if use_idx in closure:
                    continue
                closure.add(use_idx)
                frontier.append(stmt.dst)
        if not closure:
            return set(), None
        # The final instruction: the unique closure member whose result is
        # used outside the closure (or nowhere).
        finals = []
        for idx in closure:
            stmt = self.kernel.body[idx]
            outside = [u for u in self.uses.get(stmt.dst, [])
                       if u not in closure]
            if outside or not self.uses.get(stmt.dst):
                finals.append(idx)
        if len(finals) != 1:
            return set(), None  # not a closure
        return closure, finals[0]

    def _closure_deps(self, closure: Set[int], stream: RecognizedStream
                      ) -> Optional[List[RecognizedStream]]:
        """Streams feeding the closure besides ``stream``; None if core values
        leak in (which breaks the decoupling boundary, §III-A)."""
        deps: List[RecognizedStream] = []
        for idx in closure:
            stmt = self.kernel.body[idx]
            assert isinstance(stmt, BinOp)
            for src in stmt.srcs:
                if src.startswith("$") or src == stream.produced_var:
                    continue
                producer_idx = self.defs.get(src)
                if producer_idx in closure:
                    continue
                if src in self.stream_of_var:
                    producer = self.stream_of_var[src]
                    if producer.sid != stream.sid:
                        deps.append(producer)
                    continue
                return None  # loop-variant core value: ineligible
        return deps

    # ------------------------------------------------------------------
    def _finalize(self) -> None:
        absorbed = self.result.absorbed_stmts()
        for idx, stmt in enumerate(self.kernel.body):
            if idx in absorbed or idx in self.stream_stmts:
                continue
            self.result.residual_stmts.append(idx)
        # Which streams' data does the residual core code consume?
        residual_uses: Set[str] = set()
        for idx in self.result.residual_stmts:
            stmt = self.kernel.body[idx]
            if isinstance(stmt, BinOp):
                residual_uses.update(stmt.srcs)
            elif isinstance(stmt, Store):
                residual_uses.add(stmt.src)
            elif isinstance(stmt, Atomic):
                residual_uses.add(stmt.operand)
            elif isinstance(stmt, Reduce):
                residual_uses.add(stmt.src)
            elif isinstance(stmt, Load):
                access = stmt.access
                if hasattr(access, "index_var"):
                    residual_uses.add(access.index_var)
        for stream in self.streams:
            consumed = (stream.produced_var in residual_uses
                        if stream.produced_var else False)
            self.result.core_consumes[stream.sid] = consumed


def assign(kernel: Kernel, streams: List[RecognizedStream]) -> Assignment:
    """Run the computation assignment pass."""
    return Assigner(kernel, streams).run()
