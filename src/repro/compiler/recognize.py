"""Stream recognition (§III-B): turn kernel memory accesses into streams.

The pass walks the body once, creating one stream per distinct memory
access pattern:

* affine accesses become :class:`AffinePattern` streams, with byte strides
  from loop-variable coefficients x element size and dimensions ordered
  innermost-first;
* an indirect access becomes an :class:`IndirectPattern` stream whose base
  stream is the load producing its index value;
* a pointer-chase access becomes a :class:`PointerChasePattern` stream;
* a load followed by a store to the *same* affine access is merged into a
  single RMW ("update") stream;
* a :class:`~repro.compiler.ir.Reduce` becomes a memory-free reduction
  stream riding on the stream that produces its input.

The pass produces :class:`RecognizedStream` records that later passes enrich
with computation; it does not decide offloading.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.compiler.ir import (
    Access,
    AffineAccess,
    Atomic,
    BinOp,
    IndirectAccess,
    Kernel,
    Load,
    Loop,
    PointerChaseAccess,
    Reduce,
    Statement,
    Store,
)
from repro.isa.pattern import (
    AffinePattern,
    ComputeKind,
    IndirectPattern,
    PointerChasePattern,
)


class RecognitionError(ValueError):
    """The kernel contains an access the stream ISA cannot express."""


@dataclass
class RecognizedStream:
    """A stream candidate before computation assignment."""

    sid: int
    name: str
    pattern: Union[AffinePattern, IndirectPattern, PointerChasePattern]
    compute: ComputeKind
    region: str
    element_bytes: int
    stmt_indices: List[int]            # body statements folded into the stream
    base_sid: Optional[int] = None
    value_dep_sids: List[int] = field(default_factory=list)
    produced_var: Optional[str] = None  # variable the stream data defines
    stored_var: Optional[str] = None    # variable a store stream consumes
    atomic_op: Optional[str] = None
    modifies_hint: float = 1.0
    loop_vars: Tuple[str, ...] = ()     # loop vars the address varies with
    known_length: bool = True
    memory_free: bool = False           # reduction streams carry no accesses
    self_dependent: bool = False
    trips_per_kernel: float = 1.0       # stream steps per full kernel run
    results_per_kernel: float = 1.0     # reduce streams: results delivered
    associative: bool = True
    operands_ineligible: bool = False   # compute needs operands the stream
                                        # cannot take (SS II-B); prefetch-only

    @property
    def is_affine(self) -> bool:
        return isinstance(self.pattern, AffinePattern)


def _loop_trip_product(loops: Tuple[Loop, ...]) -> float:
    total = 1.0
    for loop in loops:
        total *= loop.mean_trip
    return total


def _affine_pattern(kernel: Kernel, access: AffineAccess,
                    element_bytes: int) -> Tuple[AffinePattern, Tuple[str, ...], bool]:
    """Build the pattern plus (varying loop vars, fully-known-trip flag)."""
    # Innermost-first dimension order.
    varying: List[Loop] = []
    for loop in reversed(kernel.loops):
        if access.coeff_of(loop.var) != 0:
            varying.append(loop)
    if not varying:
        # Loop-invariant address: a 1-element "stream" (e.g. scalar output).
        pattern = AffinePattern(base=access.offset * element_bytes,
                                strides=(element_bytes,), lengths=(1,),
                                element_bytes=element_bytes)
        return pattern, (), True
    if len(varying) > AffinePattern.MAX_DIMS:
        raise RecognitionError(
            f"affine access on {access.region} varies with {len(varying)} "
            f"loops; ISA supports {AffinePattern.MAX_DIMS}")
    strides = tuple(access.coeff_of(l.var) * element_bytes for l in varying)
    lengths = tuple(int(round(l.mean_trip)) if l.mean_trip >= 1 else 1
                    for l in varying)
    known = all(l.known_trip for l in varying)
    pattern = AffinePattern(base=access.offset * element_bytes,
                            strides=strides, lengths=lengths,
                            element_bytes=element_bytes)
    return pattern, tuple(l.var for l in varying), known


def _trips_per_kernel(kernel: Kernel, loop_vars: Tuple[str, ...]) -> float:
    """How many elements the stream produces over the whole kernel run."""
    if not loop_vars:
        return 1.0
    total = 1.0
    deepest = -1
    for idx, loop in enumerate(kernel.loops):
        if loop.var in loop_vars:
            deepest = idx
    # A stream steps once per iteration of the deepest loop it varies with,
    # for every iteration of the loops enclosing that level.
    for idx, loop in enumerate(kernel.loops):
        if idx <= deepest:
            total *= loop.mean_trip
    return total


class Recognizer:
    """Single-use object holding pass state."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.streams: List[RecognizedStream] = []
        self._next_sid = 0
        self._by_var: Dict[str, RecognizedStream] = {}     # produced var -> stream
        self._by_affine: Dict[Tuple, RecognizedStream] = {}  # merged RMW lookup
        self._consumed: set = set()                          # stmt indices in streams

    def run(self) -> List[RecognizedStream]:
        self._merge_rmw_pairs()
        for idx, stmt in enumerate(self.kernel.body):
            if idx in self._consumed:
                continue
            if getattr(stmt, "no_stream", False):
                continue  # core-private access, stays in the core
            if isinstance(stmt, Load):
                self._recognize_load(idx, stmt)
            elif isinstance(stmt, Store):
                self._recognize_store(idx, stmt)
            elif isinstance(stmt, Atomic):
                self._recognize_atomic(idx, stmt)
            elif isinstance(stmt, Reduce):
                self._recognize_reduce(idx, stmt)
            # BinOps are handled by the assignment pass.
        return self.streams

    # ------------------------------------------------------------------
    def _new_sid(self) -> int:
        sid = self._next_sid
        self._next_sid += 1
        return sid

    def _access_key(self, access: Access):
        if isinstance(access, AffineAccess):
            return ("affine", access.region, access.coeffs, access.offset)
        return None

    def _merge_rmw_pairs(self) -> None:
        """Find Load(x, A) ... Store(A, y) with identical affine access."""
        loads: Dict[Tuple, Tuple[int, Load]] = {}
        for idx, stmt in enumerate(self.kernel.body):
            if isinstance(stmt, Load) and not stmt.no_stream:
                key = self._access_key(stmt.access)
                if key is not None:
                    loads[key] = (idx, stmt)
        for idx, stmt in enumerate(self.kernel.body):
            if not isinstance(stmt, Store) or stmt.no_stream:
                continue
            key = self._access_key(stmt.access)
            if key is None or key not in loads:
                continue
            load_idx, load_stmt = loads[key]
            if load_idx >= idx:
                continue
            # A load merges with at most one store; a second store to the
            # same access stays a plain store stream (WAW is its problem).
            del loads[key]
            element_bytes = self.kernel.element_bytes[stmt.access.region]
            pattern, loop_vars, known = _affine_pattern(
                self.kernel, stmt.access, element_bytes)
            stream = RecognizedStream(
                sid=self._new_sid(),
                name=f"{stmt.access.region}_rmw",
                pattern=pattern,
                compute=ComputeKind.RMW,
                region=stmt.access.region,
                element_bytes=element_bytes,
                stmt_indices=[load_idx, idx],
                produced_var=load_stmt.dst,
                stored_var=stmt.src,
                loop_vars=loop_vars,
                known_length=known,
                trips_per_kernel=_trips_per_kernel(self.kernel, loop_vars),
            )
            self.streams.append(stream)
            self._by_var[load_stmt.dst] = stream
            self._consumed.update((load_idx, idx))

    def _recognize_load(self, idx: int, stmt: Load) -> None:
        element_bytes = self.kernel.element_bytes[stmt.access.region]
        if isinstance(stmt.access, AffineAccess):
            pattern, loop_vars, known = _affine_pattern(
                self.kernel, stmt.access, element_bytes)
            base_sid = None
            if stmt.access.base_var is not None:
                # Nested stream (SS III-A): inner affine configured from an
                # outer stream's value each outer iteration.
                base = self._require_base(stmt.access.base_var,
                                          stmt.access.region)
                base_sid = base.sid
            stream = RecognizedStream(
                sid=self._new_sid(), name=f"{stmt.access.region}_ld",
                pattern=pattern, compute=ComputeKind.LOAD,
                region=stmt.access.region, element_bytes=element_bytes,
                stmt_indices=[idx], produced_var=stmt.dst,
                base_sid=base_sid, loop_vars=loop_vars, known_length=known,
                trips_per_kernel=_trips_per_kernel(self.kernel, loop_vars))
        elif isinstance(stmt.access, IndirectAccess):
            base = self._require_base(stmt.access.index_var, stmt.access.region)
            pattern = IndirectPattern(base=0, scale=stmt.access.scale
                                      * element_bytes,
                                      offset=stmt.access.offset * element_bytes,
                                      element_bytes=element_bytes)
            stream = RecognizedStream(
                sid=self._new_sid(), name=f"{stmt.access.region}_ind_ld",
                pattern=pattern, compute=ComputeKind.LOAD,
                region=stmt.access.region, element_bytes=element_bytes,
                stmt_indices=[idx], produced_var=stmt.dst,
                base_sid=base.sid, loop_vars=base.loop_vars,
                known_length=base.known_length,
                trips_per_kernel=base.trips_per_kernel)
        elif isinstance(stmt.access, PointerChaseAccess):
            pattern = PointerChasePattern(
                start=0, next_offset=stmt.access.next_offset,
                element_bytes=element_bytes)
            loop = self._chase_loop()
            base_sid = None
            if not stmt.access.start_var.startswith("$"):
                start = self._trace_to_stream(stmt.access.start_var)
                if start is not None:
                    base_sid = start.sid
            stream = RecognizedStream(
                sid=self._new_sid(), name=f"{stmt.access.region}_chase",
                pattern=pattern, compute=ComputeKind.LOAD,
                region=stmt.access.region, element_bytes=element_bytes,
                stmt_indices=[idx], produced_var=stmt.dst,
                base_sid=base_sid, loop_vars=(loop.var,), known_length=False,
                trips_per_kernel=_trips_per_kernel(self.kernel, (loop.var,)))
        else:  # pragma: no cover - IR validation rejects unknown accesses
            raise RecognitionError(f"unknown access {stmt.access!r}")
        self.streams.append(stream)
        self._by_var[stmt.dst] = stream
        self._consumed.add(idx)

    def _recognize_store(self, idx: int, stmt: Store) -> None:
        element_bytes = self.kernel.element_bytes[stmt.access.region]
        if isinstance(stmt.access, AffineAccess):
            pattern, loop_vars, known = _affine_pattern(
                self.kernel, stmt.access, element_bytes)
            base_sid = None
            if stmt.access.base_var is not None:
                base_sid = self._require_base(stmt.access.base_var,
                                              stmt.access.region).sid
            stream = RecognizedStream(
                sid=self._new_sid(), name=f"{stmt.access.region}_st",
                pattern=pattern, compute=ComputeKind.STORE,
                region=stmt.access.region, element_bytes=element_bytes,
                stmt_indices=[idx], stored_var=stmt.src,
                base_sid=base_sid, loop_vars=loop_vars, known_length=known,
                trips_per_kernel=_trips_per_kernel(self.kernel, loop_vars))
        elif isinstance(stmt.access, IndirectAccess):
            base = self._require_base(stmt.access.index_var, stmt.access.region)
            pattern = IndirectPattern(base=0,
                                      scale=stmt.access.scale * element_bytes,
                                      offset=stmt.access.offset * element_bytes,
                                      element_bytes=element_bytes)
            stream = RecognizedStream(
                sid=self._new_sid(), name=f"{stmt.access.region}_ind_st",
                pattern=pattern, compute=ComputeKind.STORE,
                region=stmt.access.region, element_bytes=element_bytes,
                stmt_indices=[idx], stored_var=stmt.src,
                base_sid=base.sid, loop_vars=base.loop_vars,
                known_length=base.known_length,
                trips_per_kernel=base.trips_per_kernel)
        else:
            raise RecognitionError("pointer-chase stores are unsupported")
        self.streams.append(stream)
        self._consumed.add(idx)

    def _recognize_atomic(self, idx: int, stmt: Atomic) -> None:
        element_bytes = self.kernel.element_bytes[stmt.access.region]
        if isinstance(stmt.access, IndirectAccess):
            base = self._require_base(stmt.access.index_var, stmt.access.region)
            pattern = IndirectPattern(base=0,
                                      scale=stmt.access.scale * element_bytes,
                                      offset=stmt.access.offset * element_bytes,
                                      element_bytes=element_bytes)
            base_sid = base.sid
            loop_vars = base.loop_vars
            known = base.known_length
            trips = base.trips_per_kernel
            name = f"{stmt.access.region}_ind_at"
        elif isinstance(stmt.access, AffineAccess):
            pattern, loop_vars, known = _affine_pattern(
                self.kernel, stmt.access, element_bytes)
            base_sid = None
            trips = _trips_per_kernel(self.kernel, loop_vars)
            name = f"{stmt.access.region}_at"
        else:
            raise RecognitionError("pointer-chase atomics are unsupported")
        stream = RecognizedStream(
            sid=self._new_sid(), name=name, pattern=pattern,
            compute=ComputeKind.RMW, region=stmt.access.region,
            element_bytes=element_bytes, stmt_indices=[idx],
            stored_var=stmt.operand, produced_var=stmt.dst,
            base_sid=base_sid, atomic_op=stmt.op,
            modifies_hint=stmt.modifies_hint, loop_vars=loop_vars,
            known_length=known, trips_per_kernel=trips)
        self.streams.append(stream)
        if stmt.dst is not None:
            self._by_var[stmt.dst] = stream
        self._consumed.add(idx)

    def _recognize_reduce(self, idx: int, stmt: Reduce) -> None:
        source = self._trace_to_stream(stmt.src)
        if source is None:
            # Reduction over pure core values — stays in the core.
            return
        # A nested reduction (source varies with the innermost loop) yields
        # one result per iteration of the enclosing loops; a whole-kernel
        # reduction yields one per core.
        inner = self.kernel.loops[-1]
        if inner.var in source.loop_vars:
            results = source.trips_per_kernel / max(inner.mean_trip, 1.0)
        else:
            results = 1.0
        stream = RecognizedStream(
            sid=self._new_sid(), name=f"{source.name}_red",
            pattern=source.pattern, compute=ComputeKind.REDUCE,
            region=source.region, element_bytes=stmt.bytes,
            stmt_indices=[idx], produced_var=stmt.acc,
            # The reduction rides on its source stream (address dependence);
            # value-dep eligibility follows from that base chain.
            base_sid=source.sid,
            value_dep_sids=[source.sid], loop_vars=source.loop_vars,
            known_length=source.known_length, memory_free=True,
            self_dependent=True, trips_per_kernel=source.trips_per_kernel,
            results_per_kernel=results,
            associative=stmt.associative)
        self.streams.append(stream)
        self._by_var[stmt.acc] = stream
        self._consumed.add(idx)

    # ------------------------------------------------------------------
    def _require_base(self, index_var: str, region: str) -> RecognizedStream:
        base = self._trace_to_stream(index_var)
        if base is None:
            raise RecognitionError(
                f"indirect access to {region}: index {index_var!r} is not "
                f"produced by a stream")
        return base

    def _trace_to_stream(self, var: str) -> Optional[RecognizedStream]:
        """Follow BinOp chains back to the *driving* stream, if any.

        When a computation mixes several streams (e.g. comparing a chased
        node against an outer query key), the driving stream is the one
        stepping most often — the innermost one.
        """
        found = self._trace_all_streams(var, depth=0)
        if not found:
            return None
        return max(found, key=lambda s: (s.trips_per_kernel, -s.sid))

    def _trace_all_streams(self, var: str,
                           depth: int) -> List[RecognizedStream]:
        if depth > len(self.kernel.body) + 1:
            return []
        if var in self._by_var:
            return [self._by_var[var]]
        producer = self._producer_binop(var)
        if producer is None:
            return []
        found: List[RecognizedStream] = []
        for src in producer.srcs:
            if not src.startswith("$"):
                found.extend(self._trace_all_streams(src, depth + 1))
        return found

    def _producer_binop(self, var: str) -> Optional[BinOp]:
        for stmt in self.kernel.body:
            if isinstance(stmt, BinOp) and stmt.dst == var:
                return stmt
        return None

    def _chase_loop(self) -> Loop:
        """The loop level a pointer chase iterates (the innermost loop)."""
        return self.kernel.loops[-1]


def recognize(kernel: Kernel) -> List[RecognizedStream]:
    """Run stream recognition over a kernel."""
    return Recognizer(kernel).run()
