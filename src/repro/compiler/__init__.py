"""The near-stream compiler (LLVM substitute, §III-B).

Pipeline::

    Kernel (loop-nest IR)
      -> recognize   : classify address patterns, create streams, merge RMW
      -> assign      : attach computation to streams (load closures, store
                       slices, reduction phis, atomics)
      -> outline     : build near-stream functions, count micro-ops per
                       category per iteration
      -> decouple    : sync-free pragma handling + fully-decoupled-loop
                       detection (§V)
      -> StreamProgram

``compile_kernel`` runs the whole pipeline. The resulting
:class:`~repro.compiler.program.StreamProgram` carries the stream graph, the
per-stream and residual micro-op accounting (the substance of Fig 1a/11), and
the transform flags each execution mode needs.
"""

from repro.compiler.ir import (
    AffineAccess,
    Atomic,
    BinOp,
    IndirectAccess,
    Kernel,
    Load,
    Loop,
    PointerChaseAccess,
    Reduce,
    Store,
)
from repro.compiler.program import StreamProgram, compile_kernel

__all__ = [
    "Kernel",
    "Loop",
    "Load",
    "Store",
    "Atomic",
    "BinOp",
    "Reduce",
    "AffineAccess",
    "IndirectAccess",
    "PointerChaseAccess",
    "StreamProgram",
    "compile_kernel",
]
