"""Loop-nest kernel IR.

A :class:`Kernel` is what the compiler front-end hands the stream passes: a
(possibly nested) counted loop whose body is a list of statements in SSA form
(every variable defined exactly once per iteration). This is deliberately the
fragment of LLVM IR the paper's compiler operates on — canonical loops with
affine/indirect/pointer accesses and straight-line arithmetic; control flow
inside the body is expressed through predication (``predicated`` statement
flags), as the paper does for conditional inner streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union


class IRError(ValueError):
    """Malformed kernel IR."""


# ----------------------------------------------------------------------
# Loops
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Loop:
    """One counted loop level.

    ``trip`` is the static trip count; ``None`` marks a data-dependent loop
    (pointer chains, CSR rows), in which case ``expected_trip`` supplies the
    average used for op accounting, and streams derived from it terminate via
    ``s_end`` instead of auto-terminating.
    """

    var: str
    trip: Optional[int] = None
    expected_trip: float = 1.0

    @property
    def known_trip(self) -> bool:
        return self.trip is not None

    @property
    def mean_trip(self) -> float:
        return float(self.trip) if self.trip is not None else self.expected_trip


# ----------------------------------------------------------------------
# Memory accesses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AffineAccess:
    """region[ base_var + sum(coeff[v] * v) + offset ] in *elements*.

    ``coeffs`` maps loop variables to element-granularity coefficients; the
    compiler multiplies by the region's element size to get byte strides.

    ``base_var`` names a runtime base produced by an *outer* stream — the
    nested-stream case of §III-A (Fig 4d): e.g. the CSR edge slice
    ``col[off[u] + j]``, whose inner affine stream is re-configured from the
    outer stream each outer iteration.
    """

    region: str
    coeffs: Tuple[Tuple[str, int], ...]  # ordered (loop var, coefficient)
    offset: int = 0
    base_var: Optional[str] = None

    def coeff_of(self, var: str) -> int:
        for name, coeff in self.coeffs:
            if name == var:
                return coeff
        return 0

    @property
    def vars(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.coeffs)


@dataclass(frozen=True)
class IndirectAccess:
    """region[ scale * index_var + offset ] — index_var is a loaded value."""

    region: str
    index_var: str
    scale: int = 1
    offset: int = 0


@dataclass(frozen=True)
class PointerChaseAccess:
    """ptr = *(ptr + next_offset): traversal over a linked region."""

    region: str
    next_offset: int = 0
    start_var: str = "head"


Access = Union[AffineAccess, IndirectAccess, PointerChaseAccess]


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass
class Load:
    """dst = load access."""

    dst: str
    access: Access
    bytes: int = 8
    predicated: bool = False
    level: Optional[int] = None  # loop level the statement lives at (default innermost)
    no_stream: bool = False  # core-private access, never streamed (e.g. L1-resident bins)


@dataclass
class Store:
    """store access, src."""

    access: Access
    src: str
    bytes: int = 8
    predicated: bool = False
    level: Optional[int] = None
    no_stream: bool = False  # core-private access, never streamed (e.g. L1-resident bins)


@dataclass
class Atomic:
    """Atomic read-modify-write with relaxed ordering (§III-B).

    ``modifies_hint`` estimates how often the operation actually changes the
    stored value (drives the MRSW lock model); the functional execution
    replaces the estimate with measured truth.
    """

    access: Access
    op: str                       # "add", "min", "cas", "max", ...
    operand: str                  # value operand (variable name)
    dst: Optional[str] = None     # returned old/new value, if used
    bytes: int = 8
    modifies_hint: float = 1.0
    predicated: bool = False
    level: Optional[int] = None
    no_stream: bool = False  # core-private access, never streamed (e.g. L1-resident bins)


@dataclass
class BinOp:
    """dst = op(srcs): straight-line arithmetic.

    ``ops`` is the micro-op count (a vectorized expression can be >1) and
    ``latency`` its dependence depth in cycles; ``simd`` marks vector math
    that needs an SCC rather than a scalar PE when offloaded.
    """

    dst: str
    op: str
    srcs: Tuple[str, ...]
    ops: int = 1
    latency: int = 1
    simd: bool = False
    bytes: int = 8
    predicated: bool = False
    level: Optional[int] = None


@dataclass
class Reduce:
    """acc = op(acc, src): a loop-carried reduction phi.

    ``associative`` must be true for indirect reductions to be offloadable
    (§IV-C restricts them to associative operators).
    """

    acc: str
    op: str
    src: str
    ops: int = 1
    latency: int = 1
    simd: bool = False
    associative: bool = True
    bytes: int = 8
    level: Optional[int] = None


Statement = Union[Load, Store, Atomic, BinOp, Reduce]


# ----------------------------------------------------------------------
# Kernel
# ----------------------------------------------------------------------
@dataclass
class Kernel:
    """A loop nest plus body, region element sizes, and pragmas."""

    name: str
    loops: Tuple[Loop, ...]                 # outermost first
    body: Tuple[Statement, ...]
    element_bytes: Dict[str, int]           # region -> element size
    sync_free: bool = False                 # the s_sync_free pragma (§V)
    inner_loop_level: Optional[int] = None  # index of a nested inner loop
    control_uops_per_iter: int = 2          # branch + induction update
    # AVX-512 vectorization factor: element-granularity uop counts are
    # divided by this for issue/energy accounting (fractions are unaffected).
    vector_lanes: int = 1

    def __post_init__(self) -> None:
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self.loops:
            raise IRError(f"{self.name}: kernel needs at least one loop")
        loop_vars = {loop.var for loop in self.loops}
        if len(loop_vars) != len(self.loops):
            raise IRError(f"{self.name}: duplicate loop variables")
        defined: set = set(loop_vars)
        for stmt in self.body:
            self._check_statement(stmt, defined)
        for stmt in self.body:
            region = getattr(stmt, "access", None)
            if region is not None and region.region not in self.element_bytes:
                raise IRError(
                    f"{self.name}: region {region.region!r} has no element size")

    def _check_statement(self, stmt: Statement, defined: set) -> None:
        if isinstance(stmt, Load):
            self._check_access(stmt.access, defined)
            self._define(stmt.dst, defined)
        elif isinstance(stmt, Store):
            self._check_access(stmt.access, defined)
            self._use(stmt.src, defined)
        elif isinstance(stmt, Atomic):
            self._check_access(stmt.access, defined)
            self._use(stmt.operand, defined)
            if stmt.dst is not None:
                self._define(stmt.dst, defined)
        elif isinstance(stmt, BinOp):
            for src in stmt.srcs:
                self._use(src, defined)
            self._define(stmt.dst, defined)
        elif isinstance(stmt, Reduce):
            self._use(stmt.src, defined)
            defined.add(stmt.acc)  # loop-carried phi: defined by itself
        else:
            raise IRError(f"unknown statement {stmt!r}")

    def _check_access(self, access: Access, defined: set) -> None:
        if isinstance(access, AffineAccess):
            for var, _ in access.coeffs:
                if var not in {loop.var for loop in self.loops}:
                    raise IRError(f"affine access uses unknown loop var {var!r}")
            if access.base_var is not None:
                self._use(access.base_var, defined)
        elif isinstance(access, IndirectAccess):
            self._use(access.index_var, defined)
        elif isinstance(access, PointerChaseAccess):
            pass  # chain source is runtime data
        else:
            raise IRError(f"unknown access {access!r}")

    @staticmethod
    def _use(name: str, defined: set) -> None:
        if name.startswith("$"):  # constants / loop-invariant inputs
            return
        if name not in defined:
            raise IRError(f"use of undefined value {name!r}")

    @staticmethod
    def _define(name: str, defined: set) -> None:
        if name in defined:
            raise IRError(f"SSA violation: {name!r} defined twice")
        defined.add(name)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def trip_count(self) -> Optional[int]:
        """Total iterations of the whole nest, if statically known."""
        total = 1
        for loop in self.loops:
            if loop.trip is None:
                return None
            total *= loop.trip
        return total

    def exec_count(self, stmt: Statement) -> float:
        """Expected executions of a statement over the whole kernel run.

        A statement at loop level L runs once per iteration of loops[0..L];
        ``level=None`` means the innermost body.
        """
        level = stmt.level if stmt.level is not None else len(self.loops) - 1
        if not 0 <= level < len(self.loops):
            raise IRError(f"statement level {level} outside loop nest")
        total = 1.0
        for loop in self.loops[:level + 1]:
            total *= loop.mean_trip
        return total

    @property
    def total_iterations(self) -> float:
        """Expected innermost-body executions."""
        total = 1.0
        for loop in self.loops:
            total *= loop.mean_trip
        return total

    @property
    def inner_loop(self) -> Optional[Loop]:
        if self.inner_loop_level is None:
            return None
        return self.loops[self.inner_loop_level]

    def defs_and_uses(self) -> Tuple[Dict[str, int], Dict[str, List[int]]]:
        """def site and use sites per variable (statement indices)."""
        defs: Dict[str, int] = {}
        uses: Dict[str, List[int]] = {}

        def record_use(name: str, idx: int) -> None:
            if not name.startswith("$"):
                uses.setdefault(name, []).append(idx)

        def record_access(access, idx: int) -> None:
            if isinstance(access, IndirectAccess):
                record_use(access.index_var, idx)
            elif isinstance(access, AffineAccess) and access.base_var:
                record_use(access.base_var, idx)

        for idx, stmt in enumerate(self.body):
            if isinstance(stmt, Load):
                defs[stmt.dst] = idx
                record_access(stmt.access, idx)
            elif isinstance(stmt, Store):
                record_use(stmt.src, idx)
                record_access(stmt.access, idx)
            elif isinstance(stmt, Atomic):
                record_use(stmt.operand, idx)
                record_access(stmt.access, idx)
                if stmt.dst is not None:
                    defs[stmt.dst] = idx
            elif isinstance(stmt, BinOp):
                for src in stmt.srcs:
                    record_use(src, idx)
                defs[stmt.dst] = idx
            elif isinstance(stmt, Reduce):
                record_use(stmt.src, idx)
                defs.setdefault(stmt.acc, idx)
        return defs, uses
