"""System and microarchitecture configuration (paper Table V).

:class:`~repro.config.system.SystemConfig` is the single source of truth for
machine parameters. Presets mirror the paper's three core types::

    from repro.config import SystemConfig
    cfg = SystemConfig.ooo8()          # the paper's default evaluation core
    cfg = SystemConfig.io4(cores=16)   # smaller in-order machine

Every field defaults to the value in Table V of the paper.
"""

from repro.config.system import (
    CacheConfig,
    CoreConfig,
    CoreType,
    DramConfig,
    NocConfig,
    PrefetcherConfig,
    SEConfig,
    SystemConfig,
)

__all__ = [
    "CacheConfig",
    "CoreConfig",
    "CoreType",
    "DramConfig",
    "NocConfig",
    "PrefetcherConfig",
    "SEConfig",
    "SystemConfig",
]
