"""Machine configuration dataclasses (paper Table V).

The defaults reproduce the paper's evaluated system: an 8x8 mesh of tiles at
2.0 GHz, each tile holding a core (IO4 / OOO4 / OOO8), private L1I/L1D and L2,
one 1 MB bank of the shared static-NUCA L3, a core stream engine (SE_core),
and an L3 stream engine (SE_L3). Four corner memory controllers reach DDR4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, Tuple

KB = 1024
MB = 1024 * KB


class CoreType(Enum):
    """The three evaluated core microarchitectures."""

    IO4 = "IO4"
    OOO4 = "OOO4"
    OOO8 = "OOO8"


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order (or in-order) core parameters.

    ``in_order`` cores have no reorder window: memory latency is overlapped
    only up to the LSQ depth, matching the paper's IO4 ("4-wide
    fetch/issue/commit, 10 IQ, 4 LSQ, 10 SB").
    """

    core_type: CoreType = CoreType.OOO8
    width: int = 8                 # fetch/issue/commit width
    iq_entries: int = 64
    lq_entries: int = 72
    sq_entries: int = 56
    rob_entries: int = 224
    int_regs: int = 348
    fp_regs: int = 348
    in_order: bool = False
    # Functional units (counts; OOO8 doubles the FU count per Table V).
    int_alus: int = 8
    int_mult_div: int = 4
    fp_alus: int = 4
    fp_divs: int = 4
    simd_width_bits: int = 512     # partial AVX-512 per the paper

    @staticmethod
    def io4() -> "CoreConfig":
        return CoreConfig(core_type=CoreType.IO4, width=4, iq_entries=10,
                          lq_entries=4, sq_entries=10, rob_entries=10,
                          int_regs=64, fp_regs=64, in_order=True,
                          int_alus=4, int_mult_div=2, fp_alus=2, fp_divs=2)

    @staticmethod
    def ooo4() -> "CoreConfig":
        return CoreConfig(core_type=CoreType.OOO4, width=4, iq_entries=24,
                          lq_entries=24, sq_entries=24, rob_entries=96,
                          int_regs=256, fp_regs=256, in_order=False,
                          int_alus=4, int_mult_div=2, fp_alus=2, fp_divs=2)

    @staticmethod
    def ooo8() -> "CoreConfig":
        return CoreConfig()


@dataclass(frozen=True)
class CacheConfig:
    """One cache level. Latencies are load-to-use in core cycles."""

    size_bytes: int
    assoc: int
    latency: int
    line_bytes: int = 64
    mshrs: int = 16

    @property
    def sets(self) -> int:
        sets = self.size_bytes // (self.assoc * self.line_bytes)
        if sets * self.assoc * self.line_bytes != self.size_bytes:
            raise ValueError(
                f"cache size {self.size_bytes} not divisible by "
                f"assoc*line ({self.assoc}*{self.line_bytes})")
        return sets


@dataclass(frozen=True)
class PrefetcherConfig:
    """Baseline L1 Bingo-like spatial prefetcher + L2 stride prefetcher."""

    enabled: bool = True
    l1_pht_bytes: int = 8 * KB
    l1_region_bytes: int = 2 * KB
    l1_streams: int = 16
    l1_depth: int = 16             # prefetches in flight per stream
    l2_stride: bool = True
    # Modelled accuracy/coverage on affine vs irregular access, calibrated to
    # "best multi-core prefetcher in DPC3" behaviour.
    affine_coverage: float = 0.85
    irregular_coverage: float = 0.10


#: Largest mesh dimension any preset or sweep axis accepts. A 64x64 mesh
#: (4096 tiles) is already far past the paper's 8x8 and the ROADMAP's
#: 32x32 target; anything bigger is almost certainly a typo'd sweep.
MAX_MESH_DIM = 64

#: Mesh widths with preset support, quoted in validation errors.
MESH_PRESET_WIDTHS = (4, 8, 16, 32, 64)


def _mesh_dim_hint() -> str:
    presets = ", ".join(f"{w}x{w} ({w * w} tiles)"
                        for w in MESH_PRESET_WIDTHS)
    return (f"supported preset sizes: {presets}; any WxH with "
            f"1 <= W, H <= {MAX_MESH_DIM} is accepted")


@dataclass(frozen=True)
class NocConfig:
    """8x8 mesh with 256-bit links, 1-cycle link latency, 5-stage routers."""

    mesh_width: int = 8
    mesh_height: int = 8
    link_bits: int = 256
    link_latency: int = 1
    router_latency: int = 5
    supports_multicast: bool = True
    control_msg_bytes: int = 8     # header-only control message payload
    header_bytes: int = 8          # per-message header overhead

    def __post_init__(self) -> None:
        for name, dim in (("mesh_width", self.mesh_width),
                          ("mesh_height", self.mesh_height)):
            if dim <= 0:
                raise ValueError(
                    f"{name} must be positive, got {dim}; "
                    f"{_mesh_dim_hint()}")
            if dim > MAX_MESH_DIM:
                raise ValueError(
                    f"{name}={dim} exceeds the {MAX_MESH_DIM}x"
                    f"{MAX_MESH_DIM} ceiling; {_mesh_dim_hint()}")

    @property
    def link_bytes(self) -> int:
        return self.link_bits // 8

    @property
    def num_tiles(self) -> int:
        return self.mesh_width * self.mesh_height


@dataclass(frozen=True)
class DramConfig:
    """DDR4-3200 behind four corner memory controllers.

    Table V's "25.6 GB/s" is one DDR4-3200 channel; each of the four corner
    controllers drives one channel, so aggregate bandwidth is 4 x 25.6.
    """

    controllers: int = 4
    bandwidth_gbps: float = 25.6   # per controller (one DDR4-3200 channel)
    latency_cycles: int = 160      # ~80ns at 2 GHz
    queue_penalty: float = 0.5     # extra cycles per queued access at load 1.0

    @property
    def total_bandwidth_gbps(self) -> float:
        return self.bandwidth_gbps * self.controllers


@dataclass(frozen=True)
class SEConfig:
    """Stream engine parameters for SE_core and SE_L3 (Table V right column).

    The per-core-type SE_core FIFO capacity follows the paper's
    "256B/1kB/2kB FIFO" for IO4/OOO4/OOO8.
    """

    core_streams: int = 12
    core_fifo_bytes: int = 2 * KB          # OOO8 default
    sccs: int = 2
    scc_rob_entries: int = 64              # total across SCCs (OOO8)
    scm_issue_latency: int = 4             # SE -> local SCM issue latency
    l3_streams_per_core: int = 12
    l3_stream_buffer_bytes: int = 64 * KB  # per bank, 1kB per core
    l3_config_bytes: int = 48 * KB
    range_sync_interval: int = 8           # iterations per range message (R)
    credit_chunk: int = 64                 # iterations granted per credit msg
    scalar_pe: bool = True
    mrsw_lock: bool = True
    affine_ranges_at_core: bool = True     # Fig 15 default
    indirect_reduce_min_factor: int = 4    # offload if len > 4 * #banks

    @staticmethod
    def for_core(core_type: CoreType) -> "SEConfig":
        fifo = {CoreType.IO4: 256, CoreType.OOO4: KB, CoreType.OOO8: 2 * KB}
        rob = {CoreType.IO4: 0, CoreType.OOO4: 32, CoreType.OOO8: 64}
        return SEConfig(core_fifo_bytes=fifo[core_type],
                        scc_rob_entries=rob[core_type])


@dataclass(frozen=True)
class SystemConfig:
    """Complete machine description; the single argument to machine builders."""

    freq_ghz: float = 2.0
    core: CoreConfig = field(default_factory=CoreConfig.ooo8)
    noc: NocConfig = field(default_factory=NocConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    prefetcher: PrefetcherConfig = field(default_factory=PrefetcherConfig)
    se: SEConfig = field(default_factory=lambda: SEConfig.for_core(CoreType.OOO8))
    l1i: CacheConfig = CacheConfig(32 * KB, 8, 2)
    l1d: CacheConfig = CacheConfig(32 * KB, 8, 2)
    l2: CacheConfig = CacheConfig(256 * KB, 16, 16)
    l3_bank: CacheConfig = CacheConfig(1 * MB, 16, 20)
    l1_tlb_entries: int = 64
    l2_tlb_entries: int = 2048
    se_l3_tlb_entries: int = 1024
    tlb_latency: int = 8
    page_bytes: int = 4 * KB
    huge_page_bytes: int = 2 * MB
    use_huge_pages: bool = True

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @staticmethod
    def io4(cores: int = 64) -> "SystemConfig":
        return SystemConfig(core=CoreConfig.io4(),
                            se=SEConfig.for_core(CoreType.IO4),
                            noc=_mesh_for(cores))

    @staticmethod
    def ooo4(cores: int = 64) -> "SystemConfig":
        return SystemConfig(core=CoreConfig.ooo4(),
                            se=SEConfig.for_core(CoreType.OOO4),
                            noc=_mesh_for(cores))

    @staticmethod
    def ooo8(cores: int = 64) -> "SystemConfig":
        return SystemConfig(noc=_mesh_for(cores))

    @staticmethod
    def paper_mesh(width: int, height: int = None) -> "SystemConfig":
        """The paper's OOO8 tile on a ``width`` x ``height`` mesh.

        The first-class big-mesh sweep axis: ``paper_mesh(16)`` is the
        256-tile point, ``paper_mesh(32)`` the 1024-tile one. Dimensions
        are validated like every other mesh (positive, <= 64).
        """
        height = width if height is None else height
        return SystemConfig(noc=NocConfig(mesh_width=width,
                                          mesh_height=height))

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def num_cores(self) -> int:
        return self.noc.num_tiles

    @property
    def l3_total_bytes(self) -> int:
        return self.l3_bank.size_bytes * self.num_cores

    def scaled_private_caches(self, scale: float) -> "SystemConfig":
        """Shrink private cache capacities to match scaled-down inputs.

        Sampled simulation keeps capacity/footprint ratios honest: when a
        workload runs at 1/64 of its paper size, the L1/L2 the cache models
        see shrink by the same factor (with small floors), so miss rates
        match what the paper-sized run would show. Latencies are unchanged.
        """
        if not 0 < scale <= 1:
            raise ValueError("scale must be in (0, 1]")

        def shrink(cache: CacheConfig, floor_bytes: int) -> CacheConfig:
            target = max(cache.size_bytes * scale, floor_bytes)
            assoc = cache.assoc
            while assoc > 2 and target / (assoc * cache.line_bytes) < 2:
                assoc //= 2
            sets = max(int(target / (assoc * cache.line_bytes)), 2)
            # Round sets down to a power of two for clean indexing.
            sets = 1 << max(sets.bit_length() - 1, 1)
            return replace(cache, size_bytes=sets * assoc * cache.line_bytes,
                           assoc=assoc)

        # Floors keep short-range reuse windows honest: 2-D stencil rows and
        # tree tops shrink as sqrt(scale), not scale, so a purely
        # proportional cache would thrash where the paper-sized run hits.
        return replace(self,
                       l1d=shrink(self.l1d, 1 * KB),
                       l1i=shrink(self.l1i, 1 * KB),
                       l2=shrink(self.l2, 4 * KB),
                       l3_bank=shrink(self.l3_bank, 32 * KB))

    def with_se(self, **changes) -> "SystemConfig":
        """Return a copy with stream-engine fields changed (for sweeps)."""
        return replace(self, se=replace(self.se, **changes))

    def with_core(self, **changes) -> "SystemConfig":
        return replace(self, core=replace(self.core, **changes))

    def with_noc(self, **changes) -> "SystemConfig":
        """Return a copy with NoC fields changed (mesh sweeps)."""
        return replace(self, noc=replace(self.noc, **changes))

    def describe(self) -> Dict[str, str]:
        """Human-readable parameter dump used by the Table V bench."""
        core = self.core
        return {
            "System": f"{self.freq_ghz:.1f}GHz, "
                      f"{self.noc.mesh_width}x{self.noc.mesh_height} cores",
            "Core": f"{core.core_type.value} ({core.width}-issue, "
                    f"{core.rob_entries} ROB, {core.lq_entries} LQ, "
                    f"{core.sq_entries} SQ)",
            "L1 I/D": f"{self.l1d.size_bytes // KB}KB, {self.l1d.assoc}-way, "
                      f"{self.l1d.latency}-cycle",
            "Priv. L2": f"{self.l2.size_bytes // KB}KB, {self.l2.assoc}-way, "
                        f"{self.l2.latency}-cycle",
            "Shared L3": f"{self.l3_bank.size_bytes // MB}MB per bank / "
                         f"{self.l3_bank.assoc}-way, {self.l3_bank.latency}-cycle, "
                         f"MESI, static NUCA, 64B interleave",
            "NoC": f"{self.noc.link_bits}-bit {self.noc.link_latency}-cycle link, "
                   f"{self.noc.mesh_width}x{self.noc.mesh_height} mesh, "
                   f"{self.noc.router_latency}-stage router, X-Y routing, "
                   f"{self.dram.controllers} corner mem. ctrl.",
            "DRAM": f"3200MHz DDR4 {self.dram.bandwidth_gbps:.1f} GB/s",
            "SE_core": f"{self.se.core_fifo_bytes}B FIFO, {self.se.core_streams} "
                       f"streams, {self.se.sccs} SCCs, "
                       f"{self.se.scc_rob_entries} ROB-entry",
            "SE_L3": f"{self.se.l3_streams_per_core} streams per core, "
                     f"{self.se.l3_stream_buffer_bytes // KB}kB stream buffer, "
                     f"{self.se.scm_issue_latency}-cycle lat. to local SCM",
        }


def _mesh_for(cores: int) -> NocConfig:
    """Build a (near-)square mesh holding ``cores`` tiles."""
    if cores <= 0:
        raise ValueError(
            f"core count must be positive, got {cores}; {_mesh_dim_hint()}")
    if cores > MAX_MESH_DIM * MAX_MESH_DIM:
        raise ValueError(
            f"core count {cores} exceeds the {MAX_MESH_DIM}x{MAX_MESH_DIM} "
            f"mesh ceiling; {_mesh_dim_hint()}")
    width = int(math.isqrt(cores))
    if width * width != cores:
        raise ValueError(f"core count {cores} is not a perfect square; "
                         f"{_mesh_dim_hint()}")
    return NocConfig(mesh_width=width, mesh_height=width)
