"""Energy and area models (McPAT/CACTI substitute at 22 nm)."""

from repro.energy.model import AreaModel, EnergyLedger, EnergyModel

__all__ = ["EnergyModel", "EnergyLedger", "AreaModel"]
