"""Per-event energy and structure-level area at 22 nm.

Constants are in the published range for 22 nm McPAT/CACTI models; the
evaluation only relies on *relative* energy (Fig 10's normalized
energy-performance trade-off), so absolute joules are indicative.

Static power dominates when performance is poor — which is exactly the
paper's mechanism for NS's energy win ("reduced communication and improved
performance (less static energy)") — so the model splits static and dynamic
contributions explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.config import CoreType, SystemConfig

PJ = 1e-12
MW = 1e-3


@dataclass
class EnergyLedger:
    """Accumulated energy (joules) by component."""

    dynamic: Dict[str, float] = field(default_factory=dict)
    static: Dict[str, float] = field(default_factory=dict)

    def add_dynamic(self, component: str, joules: float) -> None:
        self.dynamic[component] = self.dynamic.get(component, 0.0) + joules

    def add_static(self, component: str, joules: float) -> None:
        self.static[component] = self.static.get(component, 0.0) + joules

    @property
    def total_dynamic(self) -> float:
        return sum(self.dynamic.values())

    @property
    def total_static(self) -> float:
        return sum(self.static.values())

    @property
    def total(self) -> float:
        return self.total_dynamic + self.total_static

    def merged_with(self, other: "EnergyLedger") -> "EnergyLedger":
        out = EnergyLedger(dict(self.dynamic), dict(self.static))
        for k, v in other.dynamic.items():
            out.add_dynamic(k, v)
        for k, v in other.static.items():
            out.add_static(k, v)
        return out


# Dynamic energy per event (joules).
_UOP_ENERGY = {
    CoreType.IO4: 9.0 * PJ,
    CoreType.OOO4: 18.0 * PJ,
    CoreType.OOO8: 28.0 * PJ,
}
_SIMD_EXTRA = 30.0 * PJ          # on top of the uop cost for 512-bit ops
_SCC_UOP = 6.0 * PJ              # lightweight context: no rename/LSQ
_SCALAR_PE_OP = 1.5 * PJ
_SE_ELEMENT = 2.0 * PJ           # SE address gen + FIFO handling per element
_L1_ACCESS = 10.0 * PJ
_L2_ACCESS = 28.0 * PJ
_L3_ACCESS = 60.0 * PJ
_DRAM_ACCESS = 15_000.0 * PJ     # per 64 B line
_NOC_BYTE_HOP = 0.65 * PJ
_TLB_ACCESS = 2.0 * PJ

# Static power per tile (watts).
_CORE_STATIC_W = {
    CoreType.IO4: 0.15,
    CoreType.OOO4: 0.55,
    CoreType.OOO8: 1.30,
}
_CACHE_STATIC_W = 0.25           # private L1+L2 plus one L3 bank
_SE_STATIC_W = 0.02              # both stream engines + buffers


@dataclass
class EventCounts:
    """Dynamic event totals of one run (machine-wide)."""

    core_uops: float = 0.0
    simd_uops: float = 0.0
    scc_uops: float = 0.0
    scalar_pe_ops: float = 0.0
    se_elements: float = 0.0
    l1_accesses: float = 0.0
    l2_accesses: float = 0.0
    l3_accesses: float = 0.0
    dram_accesses: float = 0.0
    noc_byte_hops: float = 0.0
    tlb_accesses: float = 0.0


class EnergyModel:
    """Integrates per-event dynamic energy and per-cycle static power."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.core_type = config.core.core_type

    def integrate(self, events: EventCounts, cycles: float) -> EnergyLedger:
        """Energy of one run: dynamic per event + static x wall time."""
        ledger = EnergyLedger()
        ledger.add_dynamic("core", events.core_uops
                           * _UOP_ENERGY[self.core_type])
        ledger.add_dynamic("simd", events.simd_uops * _SIMD_EXTRA)
        ledger.add_dynamic("scc", events.scc_uops * _SCC_UOP)
        ledger.add_dynamic("scalar_pe", events.scalar_pe_ops * _SCALAR_PE_OP)
        ledger.add_dynamic("se", events.se_elements * _SE_ELEMENT)
        ledger.add_dynamic("l1", events.l1_accesses * _L1_ACCESS)
        ledger.add_dynamic("l2", events.l2_accesses * _L2_ACCESS)
        ledger.add_dynamic("l3", events.l3_accesses * _L3_ACCESS)
        ledger.add_dynamic("dram", events.dram_accesses * _DRAM_ACCESS)
        ledger.add_dynamic("noc", events.noc_byte_hops * _NOC_BYTE_HOP)
        ledger.add_dynamic("tlb", events.tlb_accesses * _TLB_ACCESS)

        seconds = cycles / (self.config.freq_ghz * 1e9)
        tiles = self.config.num_cores
        ledger.add_static("core", _CORE_STATIC_W[self.core_type]
                          * tiles * seconds)
        ledger.add_static("caches", _CACHE_STATIC_W * tiles * seconds)
        ledger.add_static("se", _SE_STATIC_W * tiles * seconds)
        return ledger


class AreaModel:
    """Structure areas at 22 nm (mm^2); reproduces the §VII-A overheads."""

    # Paper-quoted SRAM areas.
    SE_CORE_BUFFER = {CoreType.IO4: 0.012, CoreType.OOO4: 0.045,
                      CoreType.OOO8: 0.090}
    SE_L3_BUFFER = 0.195       # 64 kB stream buffer
    SE_L3_CONFIG = 0.110       # 48 kB configuration store
    SE_LOGIC = 0.030           # range units, scalar PEs, issue logic

    # Baseline tile areas (core + private caches + L3 bank + router),
    # calibrated to land on the paper's 2.5% (IO4) / 2.1% (OOO8) overheads.
    TILE_AREA = {CoreType.IO4: 13.5, CoreType.OOO4: 15.5, CoreType.OOO8: 19.5}

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.core_type = config.core.core_type

    def se_area_per_tile(self) -> float:
        return (self.SE_CORE_BUFFER[self.core_type] + self.SE_L3_BUFFER
                + self.SE_L3_CONFIG + self.SE_LOGIC)

    def tile_area(self) -> float:
        return self.TILE_AREA[self.core_type]

    def chip_overhead(self) -> float:
        """SE area as a fraction of total chip area."""
        se = self.se_area_per_tile()
        return se / (self.tile_area() + se)
