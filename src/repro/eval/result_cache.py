"""Persistent, content-addressed cache for simulation results.

A sweep point is keyed by a stable hash of everything that determines its
:class:`~repro.sim.results.SimResult`: workload name, scale, seed,
sample_cores, mode, recovery rate, the full :class:`SystemConfig` contents,
and a schema version (bumped whenever simulation semantics change).  Keys
are content hashes, so two structurally equal configs share cache entries
no matter how or when they were constructed.

Entries live as pickle files under ``.repro_cache/`` (override with the
``REPRO_CACHE_DIR`` environment variable), sharded by the first two hex
digits of the key.  Writes are atomic (temp file + rename) so a crashed or
parallel writer can never leave a truncated entry behind.

Every entry is checksum-verified: the payload pickle travels inside an
envelope carrying a magic tag, the store schema, and the payload's SHA-256.
A corrupt, truncated, or schema-mismatched entry is **quarantined** — moved
to ``.repro_cache/quarantine/`` for post-mortem instead of crashing the run
— and counts as a miss.  Entries larger than ``$REPRO_CACHE_MAX_MB``
(default 512) are never written; the store reports the skip so callers can
warn once.

The store is the durability floor long unattended sweeps stand on
(DESIGN.md §5g): writes go to a temp file in the entry's shard and land
via ``os.replace`` under a best-effort per-shard advisory lock, so
concurrent writers — parallel sweep workers, overlapping sessions — can
never interleave bytes or expose a half-written entry.  A write that
fails at the filesystem (ENOSPC, EACCES, a vanished directory) degrades
to a counted miss instead of raising: losing a cache entry must never
cost a computed result.  The same paths host deterministic fault
injection (:mod:`repro.fault.chaos`): an injector passed to the
constructor — or installed ambiently via ``$REPRO_CHAOS`` — fires
seeded ENOSPC / torn-write / byte-flip / EACCES / stall faults on every
read and write, and the chaos property suite asserts the stack above
degrades to quarantine-and-recompute with zero result divergence.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Optional

try:  # advisory locks are POSIX-only; the store degrades without them
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Bump when simulator semantics change in a way that invalidates old
#: cached SimResults (e.g. the vectorized cache model's replacement rules,
#: or new SimResult fields such as the stage-timing profile or the
#: fault-injection statistics).  4: envelopes carry an artifact ``kind``
#: and the store holds functional-trace replay artifacts alongside
#: results and workload builds.  5: derived stream-geometry bundles
#: (kind "stats") join the store, and AddressSpace grew the sorted
#: page-table used by the vectorized translation.
CACHE_SCHEMA = 5

#: Artifact kinds an envelope can carry (``kind`` field); entries written
#: before the field existed count as "result".
KIND_RESULT = "result"
KIND_BUILD = "build"
KIND_REPLAY = "replay"
KIND_STATS = "stats"

#: Envelope tag distinguishing checksummed entries from foreign pickles.
_MAGIC = "repro-cache-v1"

_DEFAULT_DIR = ".repro_cache"
_ENV_DIR = "REPRO_CACHE_DIR"
_QUARANTINE_DIR = "quarantine"
#: Per-shard advisory lock file (never a cache entry).
_LOCK_NAME = ".lock"
#: Cap on a single entry's serialized size, in MB (0 disables the cap).
_ENV_MAX_MB = "REPRO_CACHE_MAX_MB"
_DEFAULT_MAX_MB = 512.0


def max_entry_bytes() -> Optional[int]:
    """The per-entry size cap from ``$REPRO_CACHE_MAX_MB`` (None = no cap)."""
    raw = os.environ.get(_ENV_MAX_MB, "").strip()
    try:
        mb = float(raw) if raw else _DEFAULT_MAX_MB
    except ValueError:
        mb = _DEFAULT_MAX_MB
    if mb <= 0:
        return None
    return int(mb * 1024 * 1024)


@contextmanager
def _shard_lock(entry_path: Path):
    """Best-effort advisory lock serializing writers of one shard.

    ``os.replace`` already makes individual writes atomic; the flock
    additionally serializes concurrent writers of the same shard so two
    processes racing on one key settle in a defined order and quarantine
    moves never race a rewrite.  Purely advisory and best-effort: on
    platforms without ``fcntl``, or when the lock file itself cannot be
    opened (read-only store, permission chaos), the writer proceeds
    unlocked — atomicity still holds, only the ordering guarantee is
    lost.
    """
    if fcntl is None:
        yield
        return
    fd = None
    try:
        fd = os.open(entry_path.parent / _LOCK_NAME,
                     os.O_CREAT | os.O_RDWR, 0o644)
        fcntl.flock(fd, fcntl.LOCK_EX)
    except OSError:
        if fd is not None:
            os.close(fd)
            fd = None
    try:
        yield
    finally:
        if fd is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:
                pass
            os.close(fd)


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-serializable canonical form.

    Handles the frozen dataclasses and enums that make up
    :class:`SystemConfig` and sweep points; insertion order never leaks
    into the result, so equal values always canonicalize identically.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            "fields": {f.name: _canonical(getattr(obj, f.name))
                       for f in dataclasses.fields(obj)},
        }
    if isinstance(obj, enum.Enum):
        return ["__enum__", type(obj).__name__, obj.value]
    if isinstance(obj, dict):
        return {"__dict__": sorted(
            (json.dumps(_canonical(k), sort_keys=True), _canonical(v))
            for k, v in obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for "
                    f"cache keying")


def fingerprint(obj: Any) -> str:
    """Stable content hash of any canonicalizable value."""
    blob = json.dumps(_canonical(obj), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def config_fingerprint(config: Any) -> str:
    """Content hash of a :class:`SystemConfig` (or any nested dataclass)."""
    return fingerprint(config)


def point_key(workload: str, mode: Any, config: Any, scale: float,
              seed: int, sample_cores: int,
              recovery_rate: float = 0.0,
              fault_plan: Any = None) -> str:
    """Content hash identifying one (workload, mode, config) sweep point."""
    return fingerprint({
        "schema": CACHE_SCHEMA,
        "workload": workload,
        "mode": mode,
        "config": config,
        "scale": scale,
        "seed": seed,
        "sample_cores": sample_cores,
        "recovery_rate": recovery_rate,
        "fault_plan": fault_plan,
    })


class ResultCache:
    """Checksummed on-disk pickle cache with a corruption quarantine."""

    def __init__(self, root: Optional[os.PathLike] = None,
                 injector: Optional[Any] = None) -> None:
        self.root = Path(root if root is not None
                         else os.environ.get(_ENV_DIR, _DEFAULT_DIR))
        if injector is None and os.environ.get("REPRO_CHAOS", "").strip():
            # Ambient storage-fault injection: sweep workers inherit the
            # env, so a whole parallel sweep runs under the same seeded
            # chaos.  Imported lazily — the fault package must not load
            # on every cache construction.
            from repro.fault.chaos import injector_from_env
            injector = injector_from_env()
        self.injector = injector
        self.hits = 0
        self.misses = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.quarantined = 0
        self.oversize_skips = 0
        self.write_errors = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    @property
    def quarantine_root(self) -> Path:
        return self.root / _QUARANTINE_DIR

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a bad entry aside for post-mortem instead of deleting it."""
        self.quarantined += 1
        try:
            self.quarantine_root.mkdir(parents=True, exist_ok=True)
            with _shard_lock(path):
                os.replace(path, self.quarantine_root
                           / f"{path.stem}.{reason}{path.suffix}")
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    @staticmethod
    def _pack(value: Any, kind: str = KIND_RESULT) -> bytes:
        """Envelope a value: payload pickle + SHA-256 + schema + magic."""
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        envelope = {"magic": _MAGIC, "schema": CACHE_SCHEMA, "kind": kind,
                    "sha256": hashlib.sha256(payload).hexdigest(),
                    "payload": payload}
        return pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def _unpack(blob: bytes) -> Any:
        """Verify an envelope and return its value; raises on any defect."""
        envelope = pickle.loads(blob)
        if not isinstance(envelope, dict) \
                or envelope.get("magic") != _MAGIC:
            raise ValueError("not a checksummed cache entry")
        if envelope.get("schema") != CACHE_SCHEMA:
            raise ValueError(f"store schema {envelope.get('schema')!r} != "
                             f"{CACHE_SCHEMA}")
        payload = envelope.get("payload")
        if not isinstance(payload, bytes):
            raise ValueError("missing payload")
        if hashlib.sha256(payload).hexdigest() != envelope.get("sha256"):
            raise ValueError("checksum mismatch")
        return pickle.loads(payload)

    def lookup(self, key: str) -> Optional[Any]:
        """Return the cached value for ``key``, or None on a miss.

        A missing file is a plain miss; anything unreadable — truncated
        pickle, flipped bits, foreign format, stale store schema — is
        quarantined under ``quarantine/`` and counted as a miss.  Lookups
        never raise.
        """
        path = self._path(key)
        try:
            if self.injector is not None:
                self.injector.on_read(path)
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            value = self._unpack(blob)
        except Exception:
            self.misses += 1
            self._quarantine(path, "corrupt")
            return None
        self.hits += 1
        self.bytes_read += len(blob)
        return value

    def store(self, key: str, value: Any, kind: str = KIND_RESULT) -> bool:
        """Persist ``value`` under ``key`` atomically.

        ``kind`` labels the artifact class ("result", "build", "replay",
        "stats") in the envelope so ``repro cache stats`` can account
        each class separately.  Returns False (storing nothing) when the serialized
        entry exceeds ``$REPRO_CACHE_MAX_MB`` — a runaway entry must
        degrade to a cache miss, not fill the disk.

        Serialization errors (an unpicklable value) still raise — that
        is a caller bug — but a write the *filesystem* refuses (ENOSPC,
        EACCES, a shard directory yanked from under us) degrades to a
        counted miss (``write_errors``) and returns False: an unattended
        sweep on a full disk must keep computing and returning results,
        not die storing them.
        """
        path = self._path(key)
        blob = self._pack(value, kind)
        limit = max_entry_bytes()
        if limit is not None and len(blob) > limit:
            self.oversize_skips += 1
            return False
        on_disk = blob
        tmp = None
        try:
            if self.injector is not None:
                # May raise (ENOSPC/EACCES) or return a torn/flipped
                # blob that lands at rest, exactly like real corruption.
                on_disk = self.injector.on_write(path, blob)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "wb") as fh:
                fh.write(on_disk)
            with _shard_lock(path):
                os.replace(tmp, path)
            tmp = None
        except OSError:
            self.write_errors += 1
            return False
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        self.bytes_written += len(on_disk)
        return True

    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.rglob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for lock in self.root.rglob(_LOCK_NAME):
            try:
                lock.unlink()
            except OSError:
                pass
        for shard in sorted(self.root.glob("*"), reverse=True):
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass
        return removed

    def clear_quarantine(self) -> int:
        """Delete quarantined entries only; returns the number removed.

        Quarantine is a post-mortem holding pen, not an archive: chaos
        runs and long unattended sweeps can park thousands of corrupt
        entries there, and nothing else ever deletes them (``repro cache
        clear --quarantine`` calls this).  Live entries are untouched.
        """
        removed = 0
        quarantine = self.quarantine_root
        if not quarantine.exists():
            return 0
        for path in quarantine.glob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        try:
            quarantine.rmdir()
        except OSError:
            pass
        return removed

    @staticmethod
    def _entry_kind(blob: bytes) -> str:
        """The artifact kind recorded in an entry's envelope.

        Pre-kind envelopes count as results; anything unreadable is
        "corrupt" (stats must never raise on a bad file).
        """
        try:
            envelope = pickle.loads(blob)
            if not isinstance(envelope, dict) \
                    or envelope.get("magic") != _MAGIC:
                return "corrupt"
            return str(envelope.get("kind", KIND_RESULT))
        except Exception:
            return "corrupt"

    def disk_stats(self, by_kind: bool = False) -> Dict[str, Any]:
        """Entry count and total bytes currently on disk.

        Always reports the quarantine (count and bytes) separately from
        live entries.  With ``by_kind`` each live entry's envelope is read
        to split the accounting into artifact classes (``result`` sweep
        points, ``build`` pickled workloads, ``replay`` functional
        traces, ``stats`` derived-geometry bundles) — the replay/stats
        artifacts are the large ones, so this is how their footprint is
        judged against ``$REPRO_CACHE_MAX_MB``.
        """
        entries = 0
        size = 0
        kinds: Dict[str, Dict[str, int]] = {}
        q_entries = 0
        q_size = 0
        quarantine = self.quarantine_root
        if quarantine.exists():
            for path in quarantine.glob("*.pkl"):
                try:
                    q_size += path.stat().st_size
                    q_entries += 1
                except OSError:
                    pass
        if self.root.exists():
            for path in self.root.rglob("*.pkl"):
                if quarantine in path.parents:
                    continue
                try:
                    nbytes = path.stat().st_size
                except OSError:
                    continue
                size += nbytes
                entries += 1
                if by_kind:
                    try:
                        kind = self._entry_kind(path.read_bytes())
                    except OSError:
                        kind = "corrupt"
                    bucket = kinds.setdefault(kind,
                                              {"entries": 0, "bytes": 0})
                    bucket["entries"] += 1
                    bucket["bytes"] += nbytes
        stats: Dict[str, Any] = {"entries": entries, "bytes": size,
                                 "quarantined_entries": q_entries,
                                 "quarantined_bytes": q_size}
        if by_kind:
            stats["kinds"] = kinds
        return stats

    def stats(self) -> Dict[str, int]:
        """Session statistics for this process's lookups and stores."""
        return {"hits": self.hits, "misses": self.misses,
                "bytes_read": self.bytes_read,
                "bytes_written": self.bytes_written,
                "quarantined": self.quarantined,
                "oversize_skips": self.oversize_skips,
                "write_errors": self.write_errors}


_default_cache: Optional[ResultCache] = None


def get_default_cache() -> ResultCache:
    """Process-wide cache rooted at ``$REPRO_CACHE_DIR`` or .repro_cache."""
    global _default_cache
    if _default_cache is None:
        _default_cache = ResultCache()
    return _default_cache


def set_default_cache(root: Optional[os.PathLike]) -> ResultCache:
    """Repoint the process-wide cache (e.g. from ``--cache-dir``)."""
    global _default_cache
    _default_cache = ResultCache(root)
    return _default_cache
