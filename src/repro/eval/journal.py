"""Durable sweep journal: every point lands on disk as it completes.

A long unattended sweep must survive being killed at any instant —
SIGKILL, OOM, a power cut — without losing completed work.  The result
cache already persists points, but only when a cache is enabled, and it
is content-addressed (no notion of "this sweep's progress").  The
journal closes that gap: :func:`~repro.eval.sweep.run_sweep` appends one
self-contained JSONL record per point *the moment it completes*, and a
restart with ``resume=True`` (``repro sweep --resume``) replays the
journal, skips every point already recorded, and reconstructs their
:class:`~repro.sim.results.SimResult`\\ s bit-identically — the resumed
:class:`~repro.eval.sweep.SweepResults` equals an uninterrupted run's.

Records ride the same O_APPEND single-write machinery as the bench log
(:func:`repro.eval.benchlog.append_jsonl`), so concurrent appenders
never interleave and a crash can only tear the final line.  Loading is
paranoid the same way the cache store is: every line must parse, carry
the journal schema, and — for completed points — hold a payload whose
SHA-256 matches before it is unpickled.  A torn, corrupt, or
foreign-schema line is counted and skipped, never trusted and never
fatal; the affected point is simply recomputed.

The journal is an append-only log, not a database: resuming a sweep
whose definition changed is safe (records are keyed by the same content
hash as the result cache, so stale points just never match), and
re-running a finished sweep with ``resume=True`` is a no-op that reads
everything back from the journal.
"""

from __future__ import annotations

import base64
import hashlib
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Optional

from repro.eval.benchlog import append_jsonl, iter_jsonl

#: Bump when the journal record layout changes incompatibly; loaders
#: skip records from other schemas (the points are recomputed).
JOURNAL_SCHEMA = 1

#: Record kinds (``kind`` field).
KIND_START = "sweep-start"
KIND_POINT = "sweep-point"
KIND_EVENT = "service-event"

#: Point statuses (``status`` field).
STATUS_OK = "ok"
STATUS_ERROR = "error"


class JournalState:
    """What a journal replay recovered.

    ``completed`` maps point keys to unpickled
    :class:`~repro.sim.results.SimResult`\\ s; ``failed`` maps point keys
    to the recorded failure fields (stage/error/message/traceback/
    attempts) — resuming re-attempts those, so a crash cause that went
    away (full disk, dead node) gets a second chance.  ``corrupt``
    counts lines that existed but could not be trusted (torn tail,
    checksum mismatch, unpicklable payload, foreign schema).
    """

    def __init__(self) -> None:
        self.completed: Dict[str, Any] = {}
        self.failed: Dict[str, Dict[str, Any]] = {}
        self.corrupt = 0
        self.starts = 0

    def __len__(self) -> int:
        return len(self.completed) + len(self.failed)


class SweepJournal:
    """Append-only, torn-line-safe journal of one sweep's progress."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self.appended = 0

    def exists(self) -> bool:
        return self.path.exists()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record_start(self, n_points: int, resumed: int = 0) -> None:
        """Mark a sweep (or resume) attempt; purely informational."""
        self._append({"kind": KIND_START, "schema": JOURNAL_SCHEMA,
                      "points": int(n_points), "resumed": int(resumed),
                      "pid": os.getpid()})

    def record_ok(self, point: Any, result: Any) -> None:
        """Journal one completed point and its full result.

        The SimResult travels as a base64 pickle plus its SHA-256, so
        the load path can verify integrity before unpickling and the
        reconstructed object is bit-identical (``to_dict``-equal and
        pickle-equal) to the one the run produced.
        """
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        self._append({
            "kind": KIND_POINT, "schema": JOURNAL_SCHEMA,
            "status": STATUS_OK, "key": point.key(),
            "workload": point.workload, "mode": point.mode.value,
            "scale": point.scale, "seed": point.seed,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "payload": base64.b64encode(payload).decode("ascii"),
        })

    def record_failure(self, failure: Any) -> None:
        """Journal one failed point (a structured FailedPoint)."""
        point = failure.point
        self._append({
            "kind": KIND_POINT, "schema": JOURNAL_SCHEMA,
            "status": STATUS_ERROR, "key": point.key(),
            "workload": point.workload, "mode": point.mode.value,
            "scale": point.scale, "seed": point.seed,
            "stage": failure.stage, "error": failure.error,
            "message": failure.message, "traceback": failure.traceback,
            "attempts": failure.attempts,
        })

    def _append(self, record: Dict[str, Any]) -> None:
        append_jsonl(self.path, record)
        self.appended += 1

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self) -> JournalState:
        """Replay the journal; returns the recovered state.

        Later records win for a repeated key (a point that failed, then
        succeeded on a retry or resume, counts as completed).  Never
        raises on file content: every malformed record increments
        ``corrupt`` and is skipped — the worst a hostile journal can do
        is force recomputation.
        """
        state = JournalState()
        for record in iter_jsonl(self.path):
            kind = record.get("kind")
            if kind == KIND_START:
                state.starts += 1
                continue
            if kind != KIND_POINT:
                continue  # foreign line (e.g. a bench record): not ours
            if record.get("schema") != JOURNAL_SCHEMA:
                state.corrupt += 1
                continue
            key = record.get("key")
            if not isinstance(key, str) or not key:
                state.corrupt += 1
                continue
            status = record.get("status")
            if status == STATUS_OK:
                result = self._decode_payload(record)
                if result is None:
                    state.corrupt += 1
                    continue
                state.completed[key] = result
                state.failed.pop(key, None)
            elif status == STATUS_ERROR:
                if key not in state.completed:
                    state.failed[key] = {
                        "stage": str(record.get("stage", "run")),
                        "error": str(record.get("error", "")),
                        "message": str(record.get("message", "")),
                        "traceback": str(record.get("traceback", "")),
                        "attempts": int(record.get("attempts", 1) or 1),
                    }
            else:
                state.corrupt += 1
        return state

    @staticmethod
    def _decode_payload(record: Dict[str, Any]) -> Optional[Any]:
        """Verify and unpickle one ok-record's payload; None on defect."""
        encoded = record.get("payload")
        digest = record.get("sha256")
        if not isinstance(encoded, str) or not isinstance(digest, str):
            return None
        try:
            payload = base64.b64decode(encoded.encode("ascii"),
                                       validate=True)
        except (ValueError, UnicodeEncodeError):
            return None
        if hashlib.sha256(payload).hexdigest() != digest:
            return None
        try:
            return pickle.loads(payload)
        except Exception:  # noqa: BLE001 — any defect means recompute
            return None


class EventLog:
    """Durable, seq-numbered service-event stream (DESIGN.md §5h).

    The ``repro serve`` daemon appends one record per progress event
    (point-running/done/failed, job-accepted, ...) on the same
    O_APPEND single-write machinery as the journal, so a client that
    disconnects — or a daemon that is killed and restarted — can resume
    the stream from any sequence number instead of losing history.
    Like every other log in this repo, loading is paranoid: torn,
    foreign, or unnumbered lines are skipped, never fatal.
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self.appended = 0

    def exists(self) -> bool:
        return self.path.exists()

    def append(self, record: Dict[str, Any]) -> None:
        """Append one event record (must carry an int ``seq``)."""
        append_jsonl(self.path, {"kind": KIND_EVENT,
                                 "schema": JOURNAL_SCHEMA, **record})
        self.appended += 1

    def load(self) -> list:
        """Every trustworthy event record, ordered by sequence number."""
        out = []
        for record in iter_jsonl(self.path):
            if record.get("kind") != KIND_EVENT:
                continue
            if record.get("schema") != JOURNAL_SCHEMA:
                continue
            if not isinstance(record.get("seq"), int):
                continue
            record = dict(record)
            record.pop("kind")
            record.pop("schema")
            out.append(record)
        out.sort(key=lambda r: r["seq"])
        return out

    def last_seq(self) -> int:
        """The highest recorded sequence number (0 for a fresh log)."""
        events = self.load()
        return events[-1]["seq"] if events else 0
