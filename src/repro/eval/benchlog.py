"""Append-only perf-trajectory log (``BENCH_PR2.json``).

Perf work needs a trail: every optimization PR should leave behind the
numbers it was judged by, in a form the next PR can diff against. This
module appends one JSON object per line to the file named by the
``REPRO_BENCH_LOG`` environment variable (e.g. ``BENCH_PR2.json``) — no
variable, no writes, so normal runs stay side-effect free.

Records carry a ``kind`` ("sweep", "profile", "benchmark"), a UTC
timestamp, and whatever metrics the caller measured (lines/sec,
end-to-end seconds, scale). Lines are self-contained JSON so the file
survives interleaved writers and partial histories remain parseable.

Appends are concurrent-safe: each record is emitted as a single
``os.write`` on an ``O_APPEND`` descriptor, which POSIX makes atomic with
respect to other appenders for writes of this size — sweep workers can
log into the same file without interleaving bytes. Readers validate each
line (it must parse to a JSON object carrying ``kind``) and skip torn or
foreign lines instead of raising.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Optional

#: Environment variable naming the log file; unset disables logging.
ENV_BENCH_LOG = "REPRO_BENCH_LOG"


def bench_log_path() -> Optional[Path]:
    """The configured log file, or None when logging is disabled."""
    value = os.environ.get(ENV_BENCH_LOG, "").strip()
    return Path(value) if value else None


def append_jsonl(path: os.PathLike, record: Dict[str, Any]) -> None:
    """Append one JSON object as a single atomic line.

    The whole line lands in one ``os.write`` on an ``O_APPEND``
    descriptor, which POSIX makes atomic with respect to other appenders
    for writes of this size — concurrent writers (sweep workers, a
    journaling sweep racing a bench logger) never interleave bytes
    mid-record, and a crash can only tear the final line, which readers
    skip.  This is the append machinery both the bench log and the sweep
    journal (:mod:`repro.eval.journal`) are built on.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    line = (json.dumps(record, sort_keys=True) + "\n").encode()
    fd = os.open(target, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
    try:
        os.write(fd, line)
    finally:
        os.close(fd)


def append_record(kind: str, path: Optional[os.PathLike] = None,
                  **fields: Any) -> Optional[Dict[str, Any]]:
    """Append one record; returns it, or None when logging is disabled.

    ``path`` overrides ``$REPRO_BENCH_LOG`` (used by tests). Fields must
    be JSON-serializable.
    """
    target = Path(path) if path is not None else bench_log_path()
    if target is None:
        return None
    record = {"kind": kind,
              "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                         time.gmtime()),
              **fields}
    append_jsonl(target, record)
    return record


def mesh_fields(config) -> Dict[str, Any]:
    """The mesh axes of a bench record: ``tiles`` and ``mesh`` ("WxH").

    Scaling curves (speedup / traffic vs tile count) group and sort on
    these, so every record produced under a known
    :class:`~repro.config.SystemConfig` should carry them — the
    experiment store can then plot big-mesh curves without re-parsing
    config blobs.
    """
    noc = config.noc
    return {"tiles": noc.num_tiles,
            "mesh": f"{noc.mesh_width}x{noc.mesh_height}"}


def iter_jsonl(path: os.PathLike):
    """Yield the JSON objects of a JSONL file, skipping torn lines.

    Anything that does not parse to a JSON object — a truncated tail
    from a crashed writer, stray text, bytes that are not valid UTF-8 —
    is silently skipped so a partial history stays usable. The file is
    read in binary and decoded per line: a writer killed mid-way through
    a multi-byte UTF-8 sequence must only lose that line, not make the
    whole file unreadable.  A missing file yields nothing.
    """
    try:
        with open(path, "rb") as fh:
            for raw in fh:
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    yield record
    except FileNotFoundError:
        pass


def read_records(path: os.PathLike) -> list:
    """Parse a log file, skipping torn or foreign lines.

    A valid record is a JSON object with a ``kind`` field; anything else
    is ignored (see :func:`iter_jsonl` for the torn-line rules).
    """
    return [record for record in iter_jsonl(path) if "kind" in record]
