"""Append-only perf-trajectory log (``BENCH_PR2.json``).

Perf work needs a trail: every optimization PR should leave behind the
numbers it was judged by, in a form the next PR can diff against. This
module appends one JSON object per line to the file named by the
``REPRO_BENCH_LOG`` environment variable (e.g. ``BENCH_PR2.json``) — no
variable, no writes, so normal runs stay side-effect free.

Records carry a ``kind`` ("sweep", "profile", "benchmark"), a UTC
timestamp, and whatever metrics the caller measured (lines/sec,
end-to-end seconds, scale). Lines are self-contained JSON so the file
survives interleaved writers and partial histories remain parseable.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Optional

#: Environment variable naming the log file; unset disables logging.
ENV_BENCH_LOG = "REPRO_BENCH_LOG"


def bench_log_path() -> Optional[Path]:
    """The configured log file, or None when logging is disabled."""
    value = os.environ.get(ENV_BENCH_LOG, "").strip()
    return Path(value) if value else None


def append_record(kind: str, path: Optional[os.PathLike] = None,
                  **fields: Any) -> Optional[Dict[str, Any]]:
    """Append one record; returns it, or None when logging is disabled.

    ``path`` overrides ``$REPRO_BENCH_LOG`` (used by tests). Fields must
    be JSON-serializable.
    """
    target = Path(path) if path is not None else bench_log_path()
    if target is None:
        return None
    record = {"kind": kind,
              "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                         time.gmtime()),
              **fields}
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def read_records(path: os.PathLike) -> list:
    """Parse a log file, skipping unparseable lines."""
    records = []
    try:
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
    except FileNotFoundError:
        pass
    return records
