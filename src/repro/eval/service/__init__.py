"""Sweep service: one scheduler engine behind every frontend.

The eval layer's hard-won machinery — content-addressed result cache,
crash-proof dispatch with heartbeat watchdogs, durable journals — used
to be welded inside :func:`~repro.eval.sweep.run_sweep`.  This package
turns it into a shared long-lived service (DESIGN.md §5h):

- :mod:`~repro.eval.service.jobstore` — the job-store abstraction:
  pending/running/done/failed point records backed by the existing
  journal and result-cache envelopes, with listener hooks for progress
  events.
- :mod:`~repro.eval.service.daemon` — ``repro serve``: an asyncio job
  queue over a unix socket that accepts sweep/compare requests as JSON,
  dedups in-flight identical points by content key, schedules onto the
  same process-pool dispatcher, and streams per-point progress events.
- :mod:`~repro.eval.service.client` — the line-JSON client the CLI
  (``repro submit`` / ``repro status``) and the tests drive.

``repro sweep``, the Makefile targets, and the daemon are three
frontends on one engine (:func:`~repro.eval.sweep.schedule_jobs`);
``run_sweep(...)`` remains as a thin compatibility wrapper with
bit-identical results.
"""

from repro.eval.service.jobstore import (DONE, FAILED, PENDING, RUNNING,
                                         JobRecord, JobStore,
                                         config_from_spec, config_to_spec,
                                         point_from_spec, point_to_spec)

__all__ = [
    "DONE", "FAILED", "PENDING", "RUNNING",
    "JobRecord", "JobStore",
    "config_from_spec", "config_to_spec",
    "point_from_spec", "point_to_spec",
]
