"""Synchronous line-JSON client for the ``repro serve`` daemon.

One request per connection: connect to the unix socket, write a single
JSON line, read reply lines until the server closes (or, for streaming
ops, until the ``done`` line).  This is the transport ``repro submit``
and ``repro status`` ride, and what the service tests drive directly —
deliberately boring: blocking sockets, no retries beyond
:meth:`wait_ready`, no protocol state.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union


class ServiceError(RuntimeError):
    """The daemon replied with a structured error (or not at all)."""


class ServiceClient:
    """Talk to one :class:`~repro.eval.service.daemon.SweepDaemon`."""

    def __init__(self, socket_path: Union[os.PathLike, str],
                 timeout: Optional[float] = None) -> None:
        self.socket_path = Path(socket_path)
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        try:
            sock.connect(str(self.socket_path))
        except OSError as exc:
            sock.close()
            raise ServiceError(
                f"no daemon listening on {self.socket_path} "
                f"(start one with 'repro serve'): {exc}") from exc
        return sock

    def _stream(self, request: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
        """Send one request; yield every reply line until EOF."""
        sock = self._connect()
        try:
            sock.sendall(json.dumps(request).encode() + b"\n")
            with sock.makefile("r", encoding="utf-8") as lines:
                for line in lines:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        yield json.loads(line)
                    except ValueError as exc:
                        raise ServiceError(
                            f"malformed reply line: {line[:200]!r}"
                            ) from exc
        finally:
            sock.close()

    def _call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request; expect exactly one (ok) reply line."""
        for reply in self._stream(request):
            if reply.get("ok") is False:
                raise ServiceError(reply.get("error", "request failed"))
            return reply
        raise ServiceError(
            f"daemon on {self.socket_path} closed without replying")

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self._call({"op": "ping"})

    def alive(self) -> bool:
        try:
            self.ping()
            return True
        except ServiceError:
            return False

    def wait_ready(self, timeout: float = 10.0,
                   interval: float = 0.05) -> Dict[str, Any]:
        """Poll until the daemon answers a ping (startup races)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.ping()
            except ServiceError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(interval)

    def status(self) -> Dict[str, Any]:
        return self._call({"op": "status"})

    def shutdown(self) -> Dict[str, Any]:
        return self._call({"op": "shutdown"})

    def trace(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        return self._call({"op": "trace", **spec})

    def result(self, job: str, verbose: bool = False) -> Dict[str, Any]:
        return self._call({"op": "result", "job": job,
                           "verbose": verbose})

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: Dict[str, Any],
               on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
               ) -> Dict[str, Any]:
        """Submit a sweep and follow it to completion.

        ``request`` carries either explicit ``points`` specs or a
        ``workloads``/``modes`` expansion, plus knobs (``scale``,
        ``seed``, ``config``, ``jobs``, ``timeout``, ``watchdog``,
        ``verbose``).  Every streamed progress event is passed to
        ``on_event``; the return value is the final ``done`` payload
        (with ``results`` = the sweep's ``to_dict()``), annotated with
        the header's ``job``/``total``/``new`` fields.

        If the connection drops mid-stream, the work keeps running on
        the daemon; :meth:`resume` picks the stream back up.
        """
        header: Optional[Dict[str, Any]] = None
        for reply in self._stream({"op": "submit", "follow": True,
                                   **request}):
            if header is None:
                if reply.get("ok") is False:
                    raise ServiceError(reply.get("error",
                                                 "submit failed"))
                header = reply
                continue
            if reply.get("done"):
                return {**reply, "total": header["total"],
                        "new": header["new"], "seq": header["seq"]}
            if on_event is not None:
                on_event(reply)
        if header is None:
            raise ServiceError(
                f"daemon on {self.socket_path} closed without replying")
        raise ServiceError(
            f"stream for {header.get('job')} ended before completion "
            f"(resume with events since seq {header.get('seq', 0)})")

    def submit_nowait(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Submit without following; returns the header (job id)."""
        return self._call({"op": "submit", **request, "follow": False})

    def resume(self, job: str, since: int = 0,
               on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
               ) -> Dict[str, Any]:
        """Re-attach to a job's event stream after a disconnect.

        Replays every event for ``job`` with seq > ``since`` (from the
        daemon's durable stream), then follows live until the job's
        ``done`` line — the same payload :meth:`submit` returns.
        """
        for reply in self._stream({"op": "events", "job": job,
                                   "since": since, "follow": True}):
            if reply.get("ok") is False:
                raise ServiceError(reply.get("error", "resume failed"))
            if reply.get("done"):
                return reply
            if on_event is not None:
                on_event(reply)
        raise ServiceError(
            f"stream for {job} ended before completion")

    def events(self, since: int = 0,
               job: Optional[str] = None) -> List[Dict[str, Any]]:
        """Snapshot of the recorded event stream (no follow)."""
        out = []
        for reply in self._stream({"op": "events", "since": since,
                                   **({"job": job} if job else {})}):
            if reply.get("ok") is False:
                raise ServiceError(reply.get("error", "events failed"))
            if reply.get("done"):
                break
            out.append(reply)
        return out
