"""Job store: point records shared by every sweep frontend.

A :class:`JobStore` is the single source of truth a sweep runs against:
one :class:`JobRecord` per distinct point (deduplicated by the same
content key as the result cache), moving ``pending → running →
done|failed``.  The scheduler (:func:`~repro.eval.sweep.schedule_jobs`)
pulls pending points out and folds outcomes back in; the store owns the
side effects — journaling every terminal transition the moment it
happens, persisting computed results into the
:class:`~repro.eval.result_cache.ResultCache`, and notifying subscribed
listeners so a daemon can stream per-point progress events.

The store is thread-safe (the ``repro serve`` daemon runs one scheduler
thread per job over a single shared store; overlapping submissions
dedup in flight on the record's state), and it is *not* a database:
durability comes entirely from the journal and cache envelopes it is
backed by — :meth:`absorb_journal` and :meth:`absorb_cache` rebuild
state from them, and a store can always be thrown away and reloaded.

Origins: every completed record remembers where its result came from —
``computed`` (journaled *and* written to the result cache), ``cache``
(journaled only: the cache already has it), or ``journal`` (neither:
a resume replay must not re-append what it just read).  This reproduces
``run_sweep``'s pre-refactor persistence behavior exactly, which the
resume bit-identity suites depend on.

The module also carries the JSON point codec the service protocol uses
(:func:`point_to_spec` / :func:`point_from_spec`): a point travels as a
plain dict, with its :class:`~repro.config.SystemConfig` reduced to a
named preset (``ooo8``/``io4``/``ooo4``/``mesh``) — arbitrary configs
and fault plans cannot ride the wire and raise :class:`ValueError`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, List, Optional)

from repro.config import SystemConfig
from repro.eval.journal import SweepJournal
from repro.eval.result_cache import ResultCache
from repro.eval.sweep import FailedPoint, SweepPoint, SweepResults
from repro.offload.modes import ExecMode
from repro.sim.results import SimResult

#: Record states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Where a completed record's result came from (drives persistence).
ORIGIN_COMPUTED = "computed"
ORIGIN_CACHE = "cache"
ORIGIN_JOURNAL = "journal"


@dataclass
class JobRecord:
    """One point's lifecycle inside the store."""

    point: SweepPoint
    key: str
    state: str = PENDING
    result: Optional[SimResult] = None
    failure: Optional[FailedPoint] = None
    origin: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in (DONE, FAILED)


class JobStore:
    """Shared pending/running/done/failed records for one engine.

    ``journal``/``cache`` are optional backends: when present, every
    terminal transition is journaled as it lands and computed results
    are stored content-addressed, exactly as ``run_sweep`` always did.
    Listeners registered with :meth:`subscribe` receive one dict per
    state transition (the daemon's progress-event feed); a listener
    that raises is dropped from that event, never fatal.
    """

    def __init__(self, journal: Optional[SweepJournal] = None,
                 cache: Optional[ResultCache] = None) -> None:
        self.journal = journal
        self.cache = cache
        self.lock = threading.RLock()
        self._records: Dict[str, JobRecord] = {}  # insertion-ordered
        self._listeners: List[Callable[[Dict[str, Any]], None]] = []

    # ------------------------------------------------------------------
    # Listeners
    # ------------------------------------------------------------------
    def subscribe(self, listener: Callable[[Dict[str, Any]], None]) -> None:
        """Register a callback for every state-transition event."""
        self._listeners.append(listener)

    def _emit(self, event: str, record: JobRecord, **extra: Any) -> None:
        if not self._listeners:
            return
        point = record.point
        payload = {"event": event, "key": record.key,
                   "state": record.state,
                   "workload": point.workload, "mode": point.mode.value,
                   "scale": point.scale, "seed": point.seed, **extra}
        for listener in list(self._listeners):
            try:
                listener(dict(payload))
            except Exception:  # noqa: BLE001 — observers never break runs
                pass

    # ------------------------------------------------------------------
    # Populating
    # ------------------------------------------------------------------
    def add(self, point: SweepPoint) -> JobRecord:
        """Register a point; idempotent — an existing record wins.

        Identity is the content key, so two :class:`SweepPoint`\\ s that
        hash the same config dedup even across clients and sessions.
        """
        key = point.key()
        with self.lock:
            record = self._records.get(key)
            if record is None:
                record = JobRecord(point=point, key=key)
                self._records[key] = record
            return record

    def reset(self, key: str) -> None:
        """Re-arm a failed record for another attempt (resubmission)."""
        with self.lock:
            record = self._records[key]
            if record.state == FAILED:
                record.state = PENDING
                record.failure = None
                record.origin = None

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def record(self, key: str) -> JobRecord:
        return self._records[key]

    def get(self, key: str) -> Optional[JobRecord]:
        return self._records.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def state(self, key: str) -> Optional[str]:
        record = self._records.get(key)
        return record.state if record is not None else None

    def points(self) -> List[SweepPoint]:
        with self.lock:
            return [r.point for r in self._records.values()]

    def pending_points(self, keys: Optional[Iterable[str]] = None
                       ) -> List[SweepPoint]:
        """Pending points in insertion order (restricted to ``keys``)."""
        with self.lock:
            wanted = None if keys is None else set(keys)
            return [r.point for r in self._records.values()
                    if r.state == PENDING
                    and (wanted is None or r.key in wanted)]

    def counts(self) -> Dict[str, int]:
        with self.lock:
            out = {PENDING: 0, RUNNING: 0, DONE: 0, FAILED: 0}
            for record in self._records.values():
                out[record.state] += 1
            return out

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def mark_running(self, key: str) -> None:
        with self.lock:
            record = self._records[key]
            if record.terminal:
                return
            record.state = RUNNING
        self._emit("point-running", record)

    def mark_done(self, key: str, result: SimResult,
                  origin: str = ORIGIN_COMPUTED) -> None:
        """Land one completed point; persistence follows the origin.

        ``computed`` results are journaled and cached; ``cache`` hits
        are journaled only (so a later resume needs neither the cache
        nor a recompute); ``journal`` replays touch nothing — they *are*
        the journal.
        """
        with self.lock:
            record = self._records[key]
            record.state = DONE
            record.result = result
            record.failure = None
            record.origin = origin
            if origin == ORIGIN_COMPUTED and self.cache is not None:
                self.cache.store(key, result)
            if origin != ORIGIN_JOURNAL and self.journal is not None:
                self.journal.record_ok(record.point, result)
        self._emit("point-done", record, origin=origin)

    def mark_failed(self, failure: FailedPoint) -> None:
        key = failure.point.key()
        with self.lock:
            record = self._records[key]
            record.state = FAILED
            record.failure = failure
            record.origin = None
            if self.journal is not None:
                self.journal.record_failure(failure)
        self._emit("point-failed", record, stage=failure.stage,
                   error=failure.error, message=failure.message,
                   attempts=failure.attempts)

    # ------------------------------------------------------------------
    # Backends
    # ------------------------------------------------------------------
    def absorb_journal(self) -> int:
        """Satisfy pending records from the journal replay; returns hits.

        Journaled failures are deliberately *not* adopted: a failure
        record is provisional, and resuming re-attempts the point.
        """
        if self.journal is None or not self.journal.exists():
            return 0
        state = self.journal.load()
        hits = 0
        with self.lock:
            for record in self._records.values():
                if record.state != PENDING:
                    continue
                hit = state.completed.get(record.key)
                if isinstance(hit, SimResult):
                    self.mark_done(record.key, hit, origin=ORIGIN_JOURNAL)
                    hits += 1
        return hits

    def absorb_cache(self, keys: Optional[Iterable[str]] = None) -> int:
        """Satisfy pending records from the result cache; returns hits."""
        if self.cache is None:
            return 0
        hits = 0
        with self.lock:
            wanted = None if keys is None else set(keys)
            for record in list(self._records.values()):
                if record.state != PENDING:
                    continue
                if wanted is not None and record.key not in wanted:
                    continue
                hit = self.cache.lookup(record.key)
                if isinstance(hit, SimResult):
                    self.mark_done(record.key, hit, origin=ORIGIN_CACHE)
                    hits += 1
        return hits

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def results_for(self, points: Iterable[SweepPoint]) -> SweepResults:
        """The :class:`SweepResults` view of the given points, in order.

        Completed points map to their results; failed points contribute
        their :class:`FailedPoint` (also in caller order, so
        ``to_dict()`` is deterministic across frontends).  ``resumed``
        counts the requested points satisfied from a journal replay.
        """
        results = SweepResults()
        with self.lock:
            for point in points:
                record = self._records.get(point.key())
                if record is None:
                    continue
                if record.state == DONE:
                    results[point] = record.result
                    if record.origin == ORIGIN_JOURNAL:
                        results.resumed += 1
                elif record.state == FAILED and record.failure is not None:
                    results.failures.append(record.failure)
        return results


# ----------------------------------------------------------------------
# Wire codec: points as JSON-able dicts (the service protocol)
# ----------------------------------------------------------------------

#: Config presets a point spec may name.  Arbitrary SystemConfigs stay
#: API-only: the wire carries presets so a daemon and its clients agree
#: on content keys without pickling machine descriptions across trust
#: boundaries.
_PRESETS = {"ooo8": SystemConfig.ooo8, "io4": SystemConfig.io4,
            "ooo4": SystemConfig.ooo4}


def config_to_spec(config: SystemConfig) -> Dict[str, Any]:
    """Reduce a preset-built :class:`SystemConfig` to its wire spec."""
    tiles = config.noc.num_tiles
    for name, builder in _PRESETS.items():
        try:
            if config == builder(tiles):
                return {"preset": name, "cores": tiles}
        except ValueError:  # pragma: no cover — non-preset tile count
            pass
    if config == SystemConfig.paper_mesh(config.noc.mesh_width,
                                         config.noc.mesh_height):
        return {"preset": "mesh",
                "mesh": [config.noc.mesh_width, config.noc.mesh_height]}
    raise ValueError(
        "only preset SystemConfigs (ooo8/io4/ooo4/paper_mesh) can ride "
        "the sweep-service protocol; submit custom configs through "
        "run_sweep() in-process instead")


def config_from_spec(spec: Optional[Dict[str, Any]]) -> SystemConfig:
    """Rebuild the :class:`SystemConfig` a wire spec names."""
    if spec is None:
        return SystemConfig.ooo8()
    preset = spec.get("preset", "ooo8")
    if preset == "mesh":
        width, height = spec["mesh"]
        return SystemConfig.paper_mesh(int(width), int(height))
    builder = _PRESETS.get(preset)
    if builder is None:
        raise ValueError(f"unknown config preset {preset!r} "
                         f"(want one of {sorted(_PRESETS)} or 'mesh')")
    return builder(int(spec.get("cores", 64)))


def point_to_spec(point: SweepPoint) -> Dict[str, Any]:
    """Serialize one :class:`SweepPoint` for the service protocol."""
    if point.fault_plan is not None:
        raise ValueError("fault plans cannot ride the sweep-service "
                         "protocol; run fault sweeps through run_sweep()")
    return {"workload": point.workload, "mode": point.mode.value,
            "scale": point.scale, "seed": point.seed,
            "sample_cores": point.sample_cores,
            "recovery_rate": point.recovery_rate,
            "config": config_to_spec(point.config)}


def point_from_spec(spec: Dict[str, Any]) -> SweepPoint:
    """Rebuild one :class:`SweepPoint` from its wire spec.

    Raises :class:`ValueError` on malformed specs (unknown mode or
    preset, missing workload) — the daemon turns that into a structured
    error reply instead of a dead connection.
    """
    workload = spec.get("workload")
    if not isinstance(workload, str) or not workload:
        raise ValueError("point spec needs a 'workload' name")
    mode_value = spec.get("mode", "ns")
    try:
        mode = ExecMode(mode_value)
    except ValueError:
        raise ValueError(
            f"unknown mode {mode_value!r} "
            f"(want one of {sorted(m.value for m in ExecMode)})")
    return SweepPoint(
        workload=workload, mode=mode,
        config=config_from_spec(spec.get("config")),
        scale=float(spec.get("scale", 1.0 / 64.0)),
        seed=int(spec.get("seed", 42)),
        sample_cores=int(spec.get("sample_cores", 4)),
        recovery_rate=float(spec.get("recovery_rate", 0.0)))
