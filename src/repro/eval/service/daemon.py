"""``repro serve``: a long-lived sweep daemon over a unix socket.

The daemon is the third frontend on the one scheduler engine
(:func:`~repro.eval.sweep.schedule_jobs`), next to :func:`run_sweep`
and ``repro sweep``.  It holds a single shared
:class:`~repro.eval.service.jobstore.JobStore` for its whole lifetime,
so every client benefits from every other client's completed work:

- **Protocol**: newline-delimited JSON over a unix socket, one request
  per connection (``ping`` / ``status`` / ``submit`` / ``events`` /
  ``result`` / ``trace`` / ``shutdown``).  Sweep and compare requests
  carry point specs (see :func:`~repro.eval.service.jobstore
  .point_from_spec`); replies are single JSON lines, except streaming
  ops which emit one event line per progress step and a final ``done``
  line.
- **In-flight dedup**: points are keyed by the same content hash as the
  result cache.  A submitted point that is already running (for any
  client) is *not* recomputed — the new job simply waits for the shared
  record to turn terminal, and both clients see the identical result.
- **Scheduling**: each job's newly-claimed points run on a scheduler
  thread driving :func:`schedule_jobs` with the daemon's process-pool
  dispatcher, heartbeats, watchdog, and retries — exactly the machinery
  ``run_sweep`` uses, so results are bit-identical across frontends.
- **Durability**: with ``--journal`` every terminal point lands on disk
  the moment it completes.  A SIGKILLed daemon restarted on the same
  journal adopts every journaled result on resubmission (zero
  divergence, zero recompute); with ``--event-log`` the progress stream
  itself is durable, and a reconnecting client resumes it from any
  sequence number.
- **Client disconnects are harmless**: jobs run on daemon-side threads;
  a dropped connection never cancels work.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

from repro.eval.journal import EventLog, SweepJournal
from repro.eval.result_cache import ResultCache
from repro.eval.service.jobstore import (DONE, FAILED, ORIGIN_JOURNAL,
                                         PENDING, RUNNING, JobStore,
                                         point_from_spec)
from repro.eval.sweep import (FailedPoint, SweepPoint, clip_traceback,
                              schedule_jobs)
from repro.offload.modes import ExecMode

#: Default socket path (relative to the working directory).
DEFAULT_SOCKET = ".repro-serve.sock"


def _run_traced(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-side body of a ``trace`` request (module-level: pickles).

    Runs one workload under a collecting (non-strict) tracer and
    returns a JSON-able digest — cycles, sanitizer checks, violations —
    mirroring what ``repro trace`` prints.
    """
    from repro.sim.run import run_workload
    from repro.trace import Tracer

    point = point_from_spec(spec)
    tracer = Tracer(strict=False, keep_events=False)
    result = run_workload(point.workload, point.mode, config=point.config,
                          scale=point.scale, seed=point.seed,
                          sample_cores=point.sample_cores,
                          tracer=tracer)
    return {"workload": point.workload, "mode": point.mode.value,
            "scale": point.scale, "seed": point.seed,
            "cycles": result.cycles,
            "events": tracer.n_events,
            "checks": int(tracer.sanitizer.checks),
            "violations": [str(v) for v in tracer.violations]}


@dataclass
class _Job:
    """One client submission: which keys it covers, which it computes."""

    id: str
    points: List[SweepPoint]
    keys: List[str]
    claimed: List[str]
    verbose: bool = False
    options: Dict[str, Any] = field(default_factory=dict)
    created: float = field(default_factory=time.time)


class SweepDaemon:
    """The ``repro serve`` process: asyncio frontend, threaded engine."""

    def __init__(self,
                 socket_path: Union[os.PathLike, str] = DEFAULT_SOCKET,
                 journal: Optional[Union[os.PathLike, str,
                                         SweepJournal]] = None,
                 cache: Optional[ResultCache] = None,
                 event_log: Optional[Union[os.PathLike, str,
                                           EventLog]] = None,
                 jobs: Optional[int] = None,
                 timeout: Optional[float] = None,
                 watchdog: Optional[float] = None,
                 retries: int = 2,
                 backoff: float = 0.5) -> None:
        self.socket_path = Path(socket_path)
        if isinstance(journal, SweepJournal) or journal is None:
            self.journal: Optional[SweepJournal] = journal
        else:
            self.journal = SweepJournal(journal)
        if isinstance(event_log, EventLog) or event_log is None:
            self.event_log: Optional[EventLog] = event_log
        else:
            self.event_log = EventLog(event_log)
        self.cache = cache
        self.defaults = {"jobs": jobs, "timeout": timeout,
                         "watchdog": watchdog, "retries": retries,
                         "backoff": backoff}

        self.store = JobStore(journal=self.journal, cache=self.cache)
        self.store.subscribe(self._on_store_event)

        # Journal recovery: everything a previous daemon (or CLI sweep
        # on the same journal) completed is adopted on resubmission —
        # the restart-resume path after a SIGKILL.
        self._recovered: Dict[str, Any] = {}
        if self.journal is not None and self.journal.exists():
            self._recovered = dict(self.journal.load().completed)

        # Event stream: seq-numbered, in-memory for fast replay, and —
        # when an event log is configured — durable across restarts.
        self._elock = threading.Lock()
        self.events: List[Dict[str, Any]] = (
            self.event_log.load() if self.event_log is not None
            and self.event_log.exists() else [])
        self._seq = self.events[-1]["seq"] if self.events else 0

        self._jobs: Dict[str, _Job] = {}
        # In-flight claims: point key -> job id of the scheduler thread
        # computing it.  Invariant: only non-terminal records are
        # claimed — a claim is released the instant its point lands, so
        # a resubmitted FAILED point can always be re-armed.
        self._claimed: Dict[str, str] = {}
        self._job_counter = 0
        self._started = time.time()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._flag: Optional[asyncio.Event] = None
        self._stop: Optional[asyncio.Event] = None
        self._trace_pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    # Event stream
    # ------------------------------------------------------------------
    def _publish(self, record: Dict[str, Any]) -> None:
        """Append one event (thread-safe) and wake every streamer."""
        with self._elock:
            self._seq += 1
            event = {"seq": self._seq, "ts": round(time.time(), 6),
                     **record}
            self.events.append(event)
            if self.event_log is not None:
                try:
                    self.event_log.append(event)
                except OSError:
                    pass  # the durable copy is best-effort
        loop = self._loop
        if loop is not None:
            try:
                loop.call_soon_threadsafe(self._wake)
            except RuntimeError:  # pragma: no cover — loop shut down
                pass

    def _wake(self) -> None:
        flag, self._flag = self._flag, asyncio.Event()
        if flag is not None:
            flag.set()

    def _on_store_event(self, payload: Dict[str, Any]) -> None:
        if payload.get("event") in ("point-done", "point-failed"):
            # Terminal: the claim has done its job (the scheduler thread
            # folding this outcome still holds the store lock upstream,
            # so this release is ordered before any new submission).
            with self.store.lock:
                self._claimed.pop(payload.get("key"), None)
        self._publish(payload)

    def _events_after(self, seq: int) -> List[Dict[str, Any]]:
        with self._elock:
            # Events are append-only and seq is monotonically increasing,
            # so a binary scan from the tail would do; linear is fine at
            # service scale.
            return [e for e in self.events if e["seq"] > seq]

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------
    def _accept(self, points: List[SweepPoint], verbose: bool,
                options: Dict[str, Any]) -> _Job:
        """Register a submission against the shared store (dedup here).

        Under one store lock: add records, adopt journal-recovered
        results, re-arm failed records for a retry, satisfy what the
        result cache has, then claim whatever is left that no other
        job is already computing.
        """
        with self.store.lock:
            self._job_counter += 1
            job_id = f"job-{self._job_counter}"
            records = [self.store.add(p) for p in points]
            keys = [r.key for r in records]

            resumed = 0
            for record in records:
                if record.state == PENDING \
                        and record.key in self._recovered:
                    self.store.mark_done(record.key,
                                         self._recovered.pop(record.key),
                                         origin=ORIGIN_JOURNAL)
                    resumed += 1
            for record in records:
                if record.state == FAILED \
                        and record.key not in self._claimed:
                    self.store.reset(record.key)
            cached = self.store.absorb_cache(
                [r.key for r in records if r.state == PENDING])

            inflight = sum(
                1 for r in records
                if r.state == RUNNING
                or (r.state == PENDING and r.key in self._claimed))
            claimed = []
            for record in records:
                if record.state == PENDING \
                        and record.key not in self._claimed \
                        and record.key not in claimed:
                    claimed.append(record.key)
            for key in claimed:
                self._claimed[key] = job_id

            job = _Job(id=job_id, points=list(points), keys=keys,
                       claimed=claimed, verbose=verbose, options=options)
            self._jobs[job_id] = job
        self._publish({"event": "job-accepted", "job": job.id,
                       "total": len(points), "new": len(claimed),
                       "inflight": inflight, "resumed": resumed,
                       "cached": cached})
        if claimed:
            thread = threading.Thread(target=self._run_job, args=(job,),
                                      name=f"repro-{job.id}", daemon=True)
            thread.start()
        return job

    def _run_job(self, job: _Job) -> None:
        """Scheduler-thread body: drive the engine over the job's claim."""
        options = dict(self.defaults)
        for knob in ("jobs", "timeout", "watchdog"):
            if job.options.get(knob) is not None:
                options[knob] = job.options[knob]
        try:
            schedule_jobs(self.store, keys=job.claimed,
                          jobs=options["jobs"], timeout=options["timeout"],
                          watchdog=options["watchdog"],
                          retries=options["retries"],
                          backoff=options["backoff"])
        except Exception as exc:  # noqa: BLE001 — a job never kills the daemon
            tb = clip_traceback(traceback.format_exc())
            for key in job.claimed:
                if self.store.state(key) in (PENDING, RUNNING):
                    record = self.store.record(key)
                    self.store.mark_failed(FailedPoint(
                        point=record.point, stage="scheduler",
                        error=type(exc).__name__, message=str(exc),
                        traceback=tb))
        finally:
            # Safety net for claims the terminal-event release missed
            # (e.g. a scheduler crash before an outcome could land):
            # only this job's own claims, never a newer job's re-claim.
            with self.store.lock:
                for key in job.claimed:
                    if self._claimed.get(key) == job.id:
                        del self._claimed[key]

    def _job_done(self, job: _Job) -> bool:
        return all(self.store.state(k) in (DONE, FAILED)
                   for k in job.keys)

    def _job_counts(self, job: _Job) -> Dict[str, int]:
        counts = {PENDING: 0, RUNNING: 0, DONE: 0, FAILED: 0}
        for key in job.keys:
            state = self.store.state(key)
            if state is not None:
                counts[state] += 1
        return counts

    def _job_results(self, job: _Job) -> Dict[str, Any]:
        with self.store.lock:
            results = self.store.results_for(job.points)
            payload = results.to_dict(verbose=job.verbose)
        payload["resumed"] = results.resumed
        return payload

    def _relevant(self, event: Dict[str, Any], job: _Job,
                  keyset: Set[str]) -> bool:
        return event.get("job") == job.id or event.get("key") in keyset

    # ------------------------------------------------------------------
    # Request handlers
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        """One request per connection; a dropped client never raises."""
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                request = json.loads(line.decode("utf-8",
                                                 errors="replace"))
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                await self._send(writer, {"ok": False,
                                          "error": f"bad request: {exc}"})
                return
            op = request.get("op")
            handler = {
                "ping": self._op_ping,
                "status": self._op_status,
                "submit": self._op_submit,
                "events": self._op_events,
                "result": self._op_result,
                "trace": self._op_trace,
                "shutdown": self._op_shutdown,
            }.get(op)
            if handler is None:
                await self._send(writer, {
                    "ok": False,
                    "error": f"unknown op {op!r} (want ping/status/"
                             f"submit/events/result/trace/shutdown)"})
                return
            await handler(request, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; jobs keep running
        except asyncio.CancelledError:  # pragma: no cover — shutdown
            raise
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 — teardown must not raise
                pass

    @staticmethod
    async def _send(writer: asyncio.StreamWriter,
                    obj: Dict[str, Any]) -> None:
        writer.write(json.dumps(obj).encode() + b"\n")
        await writer.drain()

    async def _op_ping(self, request: Dict[str, Any],
                       writer: asyncio.StreamWriter) -> None:
        await self._send(writer, {"ok": True, "pid": os.getpid(),
                                  "socket": str(self.socket_path)})

    async def _op_status(self, request: Dict[str, Any],
                         writer: asyncio.StreamWriter) -> None:
        with self.store.lock:
            jobs = []
            for job in self._jobs.values():
                counts = self._job_counts(job)
                jobs.append({"id": job.id, "total": len(job.keys),
                             **counts,
                             "active": not self._job_done(job)})
            payload = {"ok": True, "pid": os.getpid(),
                       "uptime_s": round(time.time() - self._started, 3),
                       "counts": self.store.counts(),
                       "jobs": jobs, "seq": self._seq,
                       "journal": (str(self.journal.path)
                                   if self.journal else None),
                       "event_log": (str(self.event_log.path)
                                     if self.event_log else None),
                       "cache": (str(self.cache.root)
                                 if self.cache else None)}
        await self._send(writer, payload)

    def _expand_points(self, request: Dict[str, Any]) -> List[SweepPoint]:
        """Sweep/compare expansion: explicit specs or workload×mode."""
        if request.get("points"):
            return [point_from_spec(s) for s in request["points"]]
        workloads = request.get("workloads") or []
        if not workloads:
            raise ValueError("submit needs 'points' or 'workloads'")
        if request.get("kind") == "compare":
            modes = [m.value for m in ExecMode]
        else:
            modes = request.get("modes") or ["base", "ns"]
        base = {"scale": request.get("scale", 1.0 / 64.0),
                "seed": request.get("seed", 42),
                "config": request.get("config")}
        return [point_from_spec({**base, "workload": w, "mode": m})
                for w in workloads for m in modes]

    async def _op_submit(self, request: Dict[str, Any],
                         writer: asyncio.StreamWriter) -> None:
        try:
            points = self._expand_points(request)
            # Dedup inside the submission itself (first occurrence wins),
            # mirroring run_sweep's behavior.
            unique, seen = [], set()
            for point in points:
                if point not in seen:
                    seen.add(point)
                    unique.append(point)
        except (ValueError, KeyError, TypeError) as exc:
            await self._send(writer, {"ok": False, "error": str(exc)})
            return
        seq_before = self._seq
        job = self._accept(unique, bool(request.get("verbose")),
                           {k: request.get(k)
                            for k in ("jobs", "timeout", "watchdog")})
        header = {"ok": True, "job": job.id, "total": len(job.keys),
                  "new": len(job.claimed), "seq": seq_before}
        await self._send(writer, header)
        if not request.get("follow", True):
            return
        await self._stream_job(writer, job, seq_before)

    async def _stream_job(self, writer: asyncio.StreamWriter, job: _Job,
                          after: int) -> None:
        keyset = set(job.keys)
        while True:
            batch = self._events_after(after)
            for event in batch:
                if self._relevant(event, job, keyset):
                    await self._send(writer, event)
            if batch:
                after = batch[-1]["seq"]
            if self._job_done(job) and not self._events_after(after):
                break
            flag = self._flag
            await flag.wait()
        await self._send(writer, {"done": True, "job": job.id,
                                  "results": self._job_results(job)})

    async def _op_events(self, request: Dict[str, Any],
                         writer: asyncio.StreamWriter) -> None:
        """Replay the event stream from ``since``; optionally follow.

        With a ``job``, the stream is filtered to that job and —
        when following — terminates with its ``done`` line, which is
        how a reconnecting client resumes exactly where it left off.
        """
        after = int(request.get("since", 0) or 0)
        follow = bool(request.get("follow", False))
        job_id = request.get("job")
        job = self._jobs.get(job_id) if job_id else None
        if job_id and job is None:
            await self._send(writer, {"ok": False,
                                      "error": f"unknown job {job_id!r}"})
            return
        keyset = set(job.keys) if job is not None else set()
        if job is not None and follow:
            await self._stream_job(writer, job, after)
            return
        for event in self._events_after(after):
            if job is None or self._relevant(event, job, keyset):
                await self._send(writer, event)
            after = max(after, event["seq"])
        if not follow:
            await self._send(writer, {"done": True, "seq": after})
            return
        while True:  # firehose-follow: until the client goes away
            flag = self._flag
            await flag.wait()
            for event in self._events_after(after):
                await self._send(writer, event)
                after = event["seq"]

    async def _op_result(self, request: Dict[str, Any],
                         writer: asyncio.StreamWriter) -> None:
        job = self._jobs.get(request.get("job"))
        if job is None:
            await self._send(writer, {
                "ok": False,
                "error": f"unknown job {request.get('job')!r}"})
            return
        job.verbose = bool(request.get("verbose", job.verbose))
        done = self._job_done(job)
        payload = {"ok": True, "job": job.id, "done": done,
                   "counts": self._job_counts(job)}
        if done:
            payload["results"] = self._job_results(job)
        await self._send(writer, payload)

    async def _op_trace(self, request: Dict[str, Any],
                        writer: asyncio.StreamWriter) -> None:
        if self._trace_pool is None:
            self._trace_pool = ProcessPoolExecutor(max_workers=1)
        try:
            digest = await asyncio.get_event_loop().run_in_executor(
                self._trace_pool, _run_traced, request)
        except Exception as exc:  # noqa: BLE001 — reply, don't die
            await self._send(writer, {"ok": False,
                                      "error": f"{type(exc).__name__}: "
                                               f"{exc}"})
            return
        await self._send(writer, {"ok": True, **digest})

    async def _op_shutdown(self, request: Dict[str, Any],
                           writer: asyncio.StreamWriter) -> None:
        self._publish({"event": "daemon-stop", "pid": os.getpid()})
        await self._send(writer, {"ok": True, "bye": True})
        if self._stop is not None:
            self._stop.set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _claim_socket(self) -> None:
        """Unlink a stale socket file; refuse to shadow a live daemon."""
        if not self.socket_path.exists():
            return
        import socket as _socket
        probe = _socket.socket(_socket.AF_UNIX, _socket.SOCK_STREAM)
        probe.settimeout(0.5)
        try:
            probe.connect(str(self.socket_path))
        except OSError:
            self.socket_path.unlink()  # stale: previous daemon died
        else:
            raise RuntimeError(
                f"a daemon is already listening on {self.socket_path}")
        finally:
            probe.close()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._flag = asyncio.Event()
        self._stop = asyncio.Event()
        self._claim_socket()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        server = await asyncio.start_unix_server(
            self._handle, path=str(self.socket_path))
        self._publish({"event": "daemon-start", "pid": os.getpid(),
                       "recovered": len(self._recovered)})
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            if self._trace_pool is not None:
                self._trace_pool.shutdown(wait=False)
            try:
                self.socket_path.unlink()
            except OSError:
                pass

    def serve_forever(self) -> None:
        """Run the daemon until ``shutdown`` (or KeyboardInterrupt)."""
        asyncio.run(self._serve())
