"""Evaluation harness: one function per paper table and figure.

``experiments`` computes the data; ``tables`` renders the qualitative
tables; ``report`` formats text tables. The benchmark suite under
``benchmarks/`` calls these and prints paper-shaped output.

Exports resolve lazily (PEP 562): importing one submodule — e.g. the
result cache from the replay fast path — must not drag in the whole
experiment suite, which costs ~50 ms of import time on every warm run.
"""

from importlib import import_module

_EXPORTS = {
    "EvalConfig": "repro.eval.experiments",
    "fig1a_stream_op_breakdown": "repro.eval.experiments",
    "fig1b_ideal_traffic": "repro.eval.experiments",
    "fig9_overall_speedup": "repro.eval.experiments",
    "fig10_energy_performance": "repro.eval.experiments",
    "fig11_offload_fractions": "repro.eval.experiments",
    "fig12_traffic_breakdown": "repro.eval.experiments",
    "fig13_scm_latency_sensitivity": "repro.eval.experiments",
    "fig14_scc_rob_sensitivity": "repro.eval.experiments",
    "fig15_affine_range_generation": "repro.eval.experiments",
    "fig16_lock_types": "repro.eval.experiments",
    "fig17_scalar_pe": "repro.eval.experiments",
    "run_all_modes": "repro.eval.experiments",
    "format_table": "repro.eval.report",
    "ResultCache": "repro.eval.result_cache",
    "config_fingerprint": "repro.eval.result_cache",
    "get_default_cache": "repro.eval.result_cache",
    "point_key": "repro.eval.result_cache",
    "set_default_cache": "repro.eval.result_cache",
    "FailedPoint": "repro.eval.sweep",
    "SweepInterrupted": "repro.eval.sweep",
    "SweepJournal": "repro.eval.journal",
    "SweepPoint": "repro.eval.sweep",
    "SweepResults": "repro.eval.sweep",
    "resolve_jobs": "repro.eval.sweep",
    "resolve_watchdog": "repro.eval.sweep",
    "run_sweep": "repro.eval.sweep",
    "table1_capabilities": "repro.eval.tables",
    "table2_patterns": "repro.eval.tables",
    "table3_stream_isas": "repro.eval.tables",
    "table4_encoding": "repro.eval.tables",
    "table5_system": "repro.eval.tables",
    "table6_workloads": "repro.eval.tables",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
