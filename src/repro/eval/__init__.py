"""Evaluation harness: one function per paper table and figure.

``experiments`` computes the data; ``tables`` renders the qualitative
tables; ``report`` formats text tables. The benchmark suite under
``benchmarks/`` calls these and prints paper-shaped output.
"""

from repro.eval.experiments import (
    EvalConfig,
    fig1a_stream_op_breakdown,
    fig1b_ideal_traffic,
    fig9_overall_speedup,
    fig10_energy_performance,
    fig11_offload_fractions,
    fig12_traffic_breakdown,
    fig13_scm_latency_sensitivity,
    fig14_scc_rob_sensitivity,
    fig15_affine_range_generation,
    fig16_lock_types,
    fig17_scalar_pe,
    run_all_modes,
)
from repro.eval.report import format_table
from repro.eval.result_cache import (
    ResultCache,
    config_fingerprint,
    get_default_cache,
    point_key,
    set_default_cache,
)
from repro.eval.sweep import SweepPoint, resolve_jobs, run_sweep
from repro.eval.tables import (
    table1_capabilities,
    table2_patterns,
    table3_stream_isas,
    table4_encoding,
    table5_system,
    table6_workloads,
)

__all__ = [
    "EvalConfig",
    "ResultCache",
    "SweepPoint",
    "config_fingerprint",
    "get_default_cache",
    "point_key",
    "resolve_jobs",
    "run_sweep",
    "set_default_cache",
    "run_all_modes",
    "fig1a_stream_op_breakdown",
    "fig1b_ideal_traffic",
    "fig9_overall_speedup",
    "fig10_energy_performance",
    "fig11_offload_fractions",
    "fig12_traffic_breakdown",
    "fig13_scm_latency_sensitivity",
    "fig14_scc_rob_sensitivity",
    "fig15_affine_range_generation",
    "fig16_lock_types",
    "fig17_scalar_pe",
    "format_table",
    "table1_capabilities",
    "table2_patterns",
    "table3_stream_isas",
    "table4_encoding",
    "table5_system",
    "table6_workloads",
]
