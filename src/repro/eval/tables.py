"""Renderers for the paper's qualitative tables (I-VI)."""

from __future__ import annotations

from typing import List, Tuple

from repro.config import SystemConfig
from repro.eval.report import format_table
from repro.isa.encoding import AFFINE_FIELDS, COMPUTE_FIELDS, INDIRECT_FIELDS
from repro.isa.pattern import ComputeKind
from repro.offload.modes import (
    AddrPattern,
    Support,
    TABLE1_PROPERTIES,
    TABLE3_STREAM_ISAS,
    Technique,
    supports,
    technique_pattern_count,
    workload_coverage,
)
from repro.workloads import workload_requirements, all_workload_names, \
    make_workload


def table1_capabilities() -> str:
    """Table I: capabilities of sub-thread near-data approaches."""
    reqs = workload_requirements()
    total_patterns = len(AddrPattern) * len(ComputeKind)
    headers = [""] + [t.value for t in Technique]
    rows = [
        ["Data Level"] + [TABLE1_PROPERTIES[t].data_level
                          for t in Technique],
        ["Prog. Transparent"] + [
            "Yes" if TABLE1_PROPERTIES[t].programmer_transparent else "No"
            for t in Technique],
        ["Loop Autonomous"] + [
            "Yes" if TABLE1_PROPERTIES[t].loop_autonomous else "No"
            for t in Technique],
        ["# Patterns (Tab II)"] + [
            f"{technique_pattern_count(t)}/{total_patterns}"
            for t in Technique],
        ["# Workloads"] + [
            f"{workload_coverage(t, reqs)}/{len(reqs)}" for t in Technique],
    ]
    return format_table(headers, rows,
                        "Table I: Capabilities of Sub-thread Near-data "
                        "Approaches")


_LETTER = {
    Technique.ACTIVE_ROUTING: "A",
    Technique.LIVIA: "L",
    Technique.OMNI_COMPUTE: "O",
    Technique.SNACK_NOC: "S",
    Technique.PIM_ENABLED: "P",
    Technique.NEAR_STREAM: "N",
}


def table2_patterns() -> str:
    """Table II: per-(address x compute) support; lowercase = partial."""
    headers = ["Compute \\ Address"] + [a.value for a in AddrPattern]
    rows: List[List[str]] = []
    for compute in ComputeKind:
        row = [compute.name.title()]
        for addr in AddrPattern:
            cell = []
            for tech in Technique:
                support = supports(tech, addr, compute)
                if support is Support.FULL:
                    cell.append(_LETTER[tech])
                elif support is Support.PARTIAL:
                    cell.append(_LETTER[tech].lower())
            row.append(" ".join(cell) or "-")
        rows.append(row)
    legend = ("A=ActiveRouting L=Livia O=Omni S=SnackNoC P=PIM-En "
              "N=NearStream; lowercase = partial (fine-grain) support")
    return format_table(headers, rows,
                        "Table II: Address and Compute Patterns") \
        + "\n" + legend


def table3_stream_isas() -> str:
    """Table III: capabilities of stream ISA works."""
    headers = ["Work", "Addr. Pattern", "Near-Data Compute?"]
    rows = [[w.name, ", ".join(w.addr_patterns), w.near_data]
            for w in TABLE3_STREAM_ISAS]
    return format_table(headers, rows,
                        "Table III: Capabilities of Stream ISA Works")


def table4_encoding() -> str:
    """Table IV: stream configuration fields and bit widths."""
    headers = ["Section", "Field", "Bits", "Description"]
    rows: List[List[str]] = []
    for section, fields in (("Affine", AFFINE_FIELDS),
                            ("Ind.", INDIRECT_FIELDS),
                            ("Cmp.", COMPUTE_FIELDS)):
        for field in fields:
            bits = (f"{field.bits}" if field.count == 1
                    else f"{field.bits} (x{field.count})")
            rows.append([section, field.name, bits, field.description])
    table = format_table(headers, rows,
                         "Table IV: Near-Stream Computing Configuration")
    totals = (f"Totals: affine={sum(f.total_bits for f in AFFINE_FIELDS)}b, "
              f"indirect={sum(f.total_bits for f in INDIRECT_FIELDS)}b, "
              f"compute={sum(f.total_bits for f in COMPUTE_FIELDS)}b")
    return table + "\n" + totals


def table5_system(config: SystemConfig = None) -> str:
    """Table V: system and microarchitecture parameters."""
    config = config or SystemConfig.ooo8()
    rows = [[k, v] for k, v in config.describe().items()]
    return format_table(["Parameter", "Value"], rows,
                        "Table V: System and Microarchitecture Parameters")


def table6_workloads(scale: float = 1.0 / 64.0) -> str:
    """Table VI: workloads, their classes, and (scaled) parameters."""
    headers = ["Benchmark", "Addr.", "Cmp", "Paper parameters",
               f"This run (scale={scale:.4g})"]
    rows = []
    for name in all_workload_names():
        wl = make_workload(name, scale=scale)
        cls = type(wl)
        from repro.config import SystemConfig as _SC
        from repro.mem.address import AddressSpace as _AS
        wl.build(_AS(_SC.ooo8()))
        iters = wl.total_iterations
        rows.append([name, cls.addr_label, cls.cmp_label, cls.paper_params,
                     f"{iters:.3g} iterations"])
    return format_table(headers, rows, "Table VI: Workloads")
