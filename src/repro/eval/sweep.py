"""Crash-proof, crash-*durable* parallel sweep harness.

Every figure driver reduces to a set of :class:`SweepPoint`\\ s.
:func:`run_sweep` deduplicates them, satisfies what it can from the
persistent :class:`~repro.eval.result_cache.ResultCache`, groups the rest
by **functional key** — (workload, scale, seed, config), the tuple that
determines addresses and compute results — and runs the groups either
inline (``jobs=1``) or on a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Within a group only the first point pays functional cost: the group
loads the content-keyed :class:`~repro.sim.replay.FunctionalTrace` from
the persistent cache (or builds the workload once, records the trace,
and stores it), and every point — every offload mode, timing knob,
sample_cores, recovery rate, and fault plan, none of which can change
addresses or compute results — replays it.  ``$REPRO_NO_REPLAY``
restores the previous build-and-share-the-workload behavior.

Determinism: a group is self-contained — it derives everything from the
(name, scale, seed, config) tuple, so its results are identical whether it
runs in this process or a worker, and in any order.  ``jobs=1`` and
``jobs=N`` therefore produce bit-identical :class:`SimResult`\\ s.

Resilience: dispatch is ``submit()``-based with a per-group timeout and
bounded retry with exponential backoff.  A worker crash
(:class:`BrokenProcessPool`) or a hung group respawns the pool and retries
the affected groups; a group that keeps failing degrades gracefully — the
sweep returns every completed point, and each failed point appears as a
structured :class:`FailedPoint` on :attr:`SweepResults.failures` instead
of raising.  Workers report per-point outcomes, so one point's exception
never discards its group's completed siblings.  Workers additionally
heartbeat (once per point and once per simulated phase), so with a
``watchdog`` a single *hung* point is detected and its group killed and
retried long before the whole per-group ``timeout`` burns down.

Durability (DESIGN.md §5g): pass ``journal=`` to append every completed
or failed point to a torn-line-safe JSONL journal
(:mod:`repro.eval.journal`) *the moment it lands* — a sweep SIGKILLed at
any instant loses at most the points in flight.  ``resume=True`` replays
the journal first and runs only the missing points; the resumed
:class:`SweepResults` is bit-identical to an uninterrupted run's.  While
a journal is active, SIGINT/SIGTERM raise :class:`SweepInterrupted` — a
:class:`SystemExit` carrying the conventional 128+signum code (130/143)
— so an unattended sweep dies cleanly with its journal flushed.
"""

from __future__ import annotations

import os
import signal as _signal
import tempfile
import threading
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple, Union)

from repro.config import SystemConfig
from repro.eval.journal import SweepJournal
from repro.eval.result_cache import ResultCache, point_key
from repro.fault.plan import FaultPlan
from repro.offload.modes import ExecMode
from repro.sim.results import SimResult

#: Environment override for the default worker count (``--jobs``).
_ENV_JOBS = "REPRO_JOBS"
#: Environment override for the per-group timeout in seconds (0 = none).
_ENV_TIMEOUT = "REPRO_SWEEP_TIMEOUT"
#: Environment override for the per-point heartbeat watchdog (0 = none).
_ENV_WATCHDOG = "REPRO_SWEEP_WATCHDOG"

#: Per-group record tags returned by workers.
_OK = "ok"
_ERR = "error"

#: Cap on a stored traceback's length: enough for the deepest frames
#: (the tail is kept — that is where the raising frame lives), small
#: enough that a thousand-point failure storm cannot bloat the journal.
TRACEBACK_LIMIT = 2000


def clip_traceback(tb: str) -> str:
    """Truncate a traceback to :data:`TRACEBACK_LIMIT`, keeping the tail."""
    if len(tb) <= TRACEBACK_LIMIT:
        return tb
    return ("... (truncated to last "
            f"{TRACEBACK_LIMIT} chars) ...\n") + tb[-TRACEBACK_LIMIT:]


class SweepInterrupted(SystemExit):
    """SIGINT/SIGTERM landed mid-sweep; the journal is already flushed.

    Raised (from the signal handler) only while :func:`run_sweep` runs
    with an active journal.  Subclasses :class:`SystemExit` carrying the
    conventional ``128 + signum`` code — 130 for SIGINT, 143 for SIGTERM
    — so an unhandled interrupt exits the process cleanly with the right
    status, while every point that completed before the signal stays
    journaled and resumable.
    """

    def __init__(self, signum: int) -> None:
        super().__init__(128 + int(signum))
        self.signum = int(signum)
        self.exit_code = 128 + int(signum)


@dataclass(frozen=True)
class SweepPoint:
    """One simulation to run: a workload under a mode on a config."""

    workload: str
    mode: ExecMode
    config: SystemConfig
    scale: float = 1.0 / 64.0
    seed: int = 42
    sample_cores: int = 4
    recovery_rate: float = 0.0
    fault_plan: Optional[FaultPlan] = None

    def key(self) -> str:
        """Content hash for the persistent result cache and the journal."""
        return point_key(self.workload, self.mode, self.config, self.scale,
                         self.seed, self.sample_cores, self.recovery_rate,
                         self.fault_plan)


@dataclass
class FailedPoint:
    """Structured record of one point that could not be simulated."""

    point: SweepPoint
    stage: str            # "build" | "run" | "worker-crash" | "timeout" | "hang"
    error: str            # exception class name (or symbolic tag)
    message: str
    traceback: str = ""   # clipped to TRACEBACK_LIMIT (tail kept)
    attempts: int = 1

    def summary(self) -> str:
        # Scale and seed are part of a point's identity: two failures of
        # the same workload/mode at different scales must not read alike.
        return (f"{self.point.workload}/{self.point.mode.value}"
                f"@{self.point.scale:g} seed={self.point.seed} "
                f"[{self.stage}] {self.error}: {self.message} "
                f"(after {self.attempts} attempt"
                f"{'s' if self.attempts != 1 else ''})")


class SweepResults(Dict[SweepPoint, SimResult]):
    """Completed points, plus structured records of any failures.

    Behaves exactly like the ``{point: SimResult}`` dict older callers
    expect; failed points are absent from the mapping and described on
    :attr:`failures`.  ``resumed`` counts the points satisfied from a
    journal replay rather than computed in this run.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.failures: List[FailedPoint] = []
        self.resumed: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_on_failure(self) -> "SweepResults":
        """Old strict behavior: raise if anything failed."""
        if self.failures:
            lines = "\n  ".join(f.summary() for f in self.failures)
            raise RuntimeError(
                f"{len(self.failures)} sweep point(s) failed:\n  {lines}")
        return self

    def to_dict(self, verbose: bool = False) -> Dict[str, Any]:
        """JSON-ready view, stable in the caller's point order.

        Used by ``repro sweep --json``, the daemon's status/result
        replies, and the resume bit-identity checks: two sweeps over the
        same points are equivalent iff their ``to_dict()`` outputs are
        equal.  Failure records carry the full point identity (scale,
        seed, content key) so two failures of the same workload/mode at
        different scales stay distinguishable; ``verbose=True`` adds the
        clipped traceback.
        """
        failures = []
        for f in self.failures:
            record = {"workload": f.point.workload,
                      "mode": f.point.mode.value,
                      "scale": f.point.scale, "seed": f.point.seed,
                      "key": f.point.key(),
                      "stage": f.stage, "error": f.error,
                      "message": f.message, "attempts": f.attempts}
            if verbose:
                record["traceback"] = f.traceback
            failures.append(record)
        return {
            "results": [
                {"workload": p.workload, "mode": p.mode.value,
                 "scale": p.scale, "seed": p.seed, "key": p.key(),
                 "result": r.to_dict()}
                for p, r in self.items()],
            "failures": failures,
        }


def _warn_bad_env(var: str, value: str, fallback: str) -> None:
    """A malformed env override must never crash a sweep mid-flight."""
    import warnings
    warnings.warn(
        f"ignoring malformed ${var}={value!r}; using {fallback}",
        RuntimeWarning, stacklevel=3)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a jobs request: None → $REPRO_JOBS or 1; <=0 → all cores.

    A malformed ``$REPRO_JOBS`` (non-integer garbage) warns and falls
    back to serial instead of crashing the sweep.
    """
    if jobs is None:
        env = os.environ.get(_ENV_JOBS, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                _warn_bad_env(_ENV_JOBS, env, "1 (serial)")
                jobs = 1
        else:
            jobs = 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def _resolve_seconds(value: Optional[float], env_var: str,
                     what: str) -> Optional[float]:
    """Shared explicit-arg/env resolution for timeout-like knobs.

    ``None`` means "none". An explicit ``value <= 0`` raises
    :class:`ValueError` — silently disabling a limit a caller asked for
    hides hangs. The environment keeps its documented convention
    (``0`` = none, so shells can switch it off) and a malformed value
    warns and falls back to none.
    """
    if value is not None:
        if value <= 0:
            raise ValueError(
                f"{what} must be positive (got {value!r}); "
                f"pass None for no {what}")
        return value
    env = os.environ.get(env_var, "").strip()
    if env:
        try:
            parsed = float(env)
        except ValueError:
            _warn_bad_env(env_var, env, f"no {what}")
            return None
        return parsed if parsed > 0 else None
    return None


def resolve_timeout(timeout: Optional[float]) -> Optional[float]:
    """Per-group timeout: explicit argument, else $REPRO_SWEEP_TIMEOUT."""
    return _resolve_seconds(timeout, _ENV_TIMEOUT, "timeout")


def resolve_watchdog(watchdog: Optional[float]) -> Optional[float]:
    """Per-point heartbeat watchdog: argument, else $REPRO_SWEEP_WATCHDOG.

    Workers heartbeat once per point and once per simulated phase; a
    heartbeat older than this many seconds means a *single point* is
    hung (not just a slow group), and its group is killed and retried
    immediately instead of burning the whole per-group ``timeout``.
    """
    return _resolve_seconds(watchdog, _ENV_WATCHDOG, "watchdog")


_GroupKey = Tuple[str, float, int, SystemConfig]


def _group_key(point: SweepPoint) -> _GroupKey:
    """The functional key: everything that determines addresses and
    compute results.  Modes, sample_cores, recovery rates, and fault
    plans ride on top (faults are semantically invariant), so all of
    them share one functional trace."""
    return (point.workload, point.scale, point.seed, point.config)


#: Payload handed to workers: the group's points, the result-cache root
#: (or None), and the heartbeat file the worker touches (or None).
_Payload = Tuple[Sequence[SweepPoint], Optional[str], Optional[str]]


def _run_group(payload: _Payload) -> List[Tuple]:
    """Run every point of one functional group, recording at most once.

    Module-level so it pickles for ProcessPoolExecutor; all points share
    the same (workload, scale, seed, config). ``payload`` carries the
    result-cache root (or None) so workers can reuse the persistent
    replay/build caches across groups and sessions, plus the heartbeat
    file this worker touches before every point and every phase so the
    dispatcher's watchdog can tell "hung" from "slow".

    The group first tries the content-keyed functional trace: a hit
    means zero functional work for the whole group.  On a miss it builds
    the workload once (through the build cache when persistent), records
    the trace, stores it, and replays it for every point.  With replay
    disabled (``$REPRO_NO_REPLAY``) points share the built workload as
    before.

    The derived-geometry stats bundle rides the same way: a persistent
    group loads it once and every mode unpacks from it; a group that had
    to compute stats stores the bundle afterwards (unless
    ``$REPRO_NO_STATS_CACHE``).  Uncached groups still share stats
    across their points through the trace's in-process memo, writing
    nothing to disk.

    Returns one record per point — ``("ok", SimResult)`` or
    ``("error", stage, exc_type, message, traceback)`` — so a mid-group
    exception costs only its own point, never the group's completed work.
    """
    from repro.mem.address import AddressSpace
    from repro.sim.run import _ENV_NO_REPLAY, _ENV_NO_STATS_CACHE, \
        run_workload
    from repro.workloads import make_workload

    points, cache_root = payload[0], payload[1]
    hb_path = payload[2] if len(payload) > 2 else None

    def _beat() -> None:
        if hb_path:
            try:
                Path(hb_path).touch()
            except OSError:
                pass  # heartbeats are best-effort, never fatal

    _beat()
    first = points[0]
    cache = ResultCache(cache_root) if cache_root is not None else None
    use_replay = not os.environ.get(_ENV_NO_REPLAY)
    use_stats = use_replay and not os.environ.get(_ENV_NO_STATS_CACHE)
    trace = None
    stats_loaded = False
    try:
        if cache is not None and use_replay:
            from repro.workloads.build_cache import load_trace_cached
            trace = load_trace_cached(first.workload, first.scale,
                                      first.seed, first.config, cache=cache)
        if trace is None:
            if cache is not None:
                from repro.workloads.build_cache import \
                    build_workload_cached
                wl = build_workload_cached(first.workload, first.scale,
                                           first.seed, first.config,
                                           cache=cache)
            else:
                wl = make_workload(first.workload, scale=first.scale,
                                   seed=first.seed)
                wl.build(AddressSpace(first.config))
            if use_replay:
                if cache is not None:
                    from repro.workloads.build_cache import \
                        record_trace_cached
                    trace = record_trace_cached(wl, first.config,
                                                cache=cache)
                else:
                    # No persistent store: record in-memory only, so an
                    # uncached sweep stays side-effect free on disk.
                    from repro.eval.result_cache import config_fingerprint
                    from repro.sim.replay import record_trace
                    trace = record_trace(wl,
                                         config_fingerprint(first.config))
        if trace is not None and cache is not None and use_stats:
            from repro.workloads.build_cache import load_stats_cached
            stats_loaded = trace.adopt_stats(
                load_stats_cached(first.workload, first.scale, first.seed,
                                  first.config, cache=cache))
    except Exception as exc:  # noqa: BLE001 — reported per point
        record = (_ERR, "build", type(exc).__name__, str(exc),
                  clip_traceback(traceback.format_exc()))
        return [record for _ in points]

    source = trace if trace is not None else wl
    records: List[Tuple] = []
    for p in points:
        _beat()
        try:
            result = run_workload(source, p.mode, config=p.config,
                                  scale=p.scale, seed=p.seed,
                                  sample_cores=p.sample_cores,
                                  recovery_rate=p.recovery_rate,
                                  fault_plan=p.fault_plan,
                                  heartbeat=_beat if hb_path else None)
            records.append((_OK, result))
        except Exception as exc:  # noqa: BLE001 — reported per point
            records.append((_ERR, "run", type(exc).__name__, str(exc),
                            clip_traceback(traceback.format_exc())))

    if (trace is not None and cache is not None and use_stats
            and not stats_loaded):
        # Persist the group's computed geometry so the next session's
        # warm runs load instead of recompute.  Pure bookkeeping: a
        # failure here must never cost the group's completed points.
        try:
            from repro.workloads.build_cache import store_stats_cached
            bundle = trace.export_stats()
            if bundle is not None:
                store_stats_cached(bundle, first.config, cache=cache)
        except Exception:  # noqa: BLE001 — best-effort persistence
            pass
    return records


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down hard: cancel queued work, terminate live workers.

    Used after a timeout, a hang, or a broken pool — the executor may
    still hold a hung or poisoned worker, and a graceful shutdown would
    block on it.
    """
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # noqa: BLE001 — teardown must not raise
        pass
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            proc.terminate()
        except Exception:  # noqa: BLE001
            pass


def _heartbeat_age(hb_path: Optional[str]) -> Optional[float]:
    """Seconds since the group's worker last heartbeat, or None if the
    heartbeat file does not exist yet (group not started / no file)."""
    if not hb_path:
        return None
    try:
        return max(0.0, time.time() - os.stat(hb_path).st_mtime)
    except OSError:
        return None


def _dispatch_parallel(payloads: List[_Payload], jobs: int,
                       timeout: Optional[float], retries: int,
                       backoff: float,
                       watchdog: Optional[float] = None,
                       on_outcome: Optional[Callable[[int, List[Tuple]],
                                                     None]] = None
                       ) -> Dict[int, List[Tuple]]:
    """Run payloads on worker pools; returns {payload index: records}.

    The dispatcher polls futures instead of blocking on each in turn, so
    it can (a) deliver every finished group to ``on_outcome`` the moment
    it lands — the journaling hook — and (b) watch worker heartbeats: a
    group whose heartbeat goes stale for ``watchdog`` seconds has a hung
    *point* and is killed immediately, without waiting out ``timeout``.

    A group whose worker crashes, times out, or hangs is retried up to
    ``retries`` extra times on a fresh pool, sleeping
    ``backoff * 2**round`` between rounds.  Groups that exhaust their
    retries yield synthetic error records (carrying the true attempt
    count), never exceptions.  Innocent groups still in flight when a
    pool must die are re-queued without being charged an attempt.

    The per-group timeout clock starts at the group's first heartbeat
    when heartbeat files are in use (a queued group waiting for a worker
    slot is not "running"); without heartbeats it falls back to the
    group's *slot-acquisition* time — the first ``workers`` groups get
    their slot at submit, every later one when an earlier group's future
    settles and frees a worker.  Charging from submit time instead (the
    old behavior) billed earlier groups' queue wait to late-scheduled
    innocents once the pool drained below ``workers`` pending groups.
    """
    outcomes: Dict[int, List[Tuple]] = {}
    attempts = {i: 0 for i in range(len(payloads))}
    queue = list(range(len(payloads)))
    round_no = 0
    poll = 0.1 if (timeout is not None or watchdog is not None) else 0.5

    def settle(i: int, records: List[Tuple]) -> None:
        outcomes[i] = records
        if on_outcome is not None:
            on_outcome(i, records)

    while queue:
        workers = min(jobs, len(queue))
        pool = ProcessPoolExecutor(max_workers=workers)
        pending: Dict = {}
        slot_at: Dict[int, float] = {}
        start_at: Dict[int, float] = {}
        # Pool workers pick groups up in submission order, so the first
        # ``workers`` groups hold a slot immediately; the rest acquire
        # one as earlier futures settle (see the done-loop below).
        unslotted: List[int] = []
        for rank, i in enumerate(queue):
            pending[pool.submit(_run_group, payloads[i])] = i
            if rank < workers:
                slot_at[i] = time.monotonic()
            else:
                unslotted.append(i)
        requeue: List[int] = []
        pool_dead = False

        def fail(i: int, stage: str, err: str, msg: str) -> None:
            attempts[i] += 1
            if attempts[i] <= retries:
                requeue.append(i)
            else:
                settle(i, [(_ERR, stage, err, msg, "", attempts[i])
                           for _ in payloads[i][0]])

        try:
            while pending:
                done, _ = wait(list(pending), timeout=poll,
                               return_when=FIRST_COMPLETED)
                for future in done:
                    i = pending.pop(future)
                    if unslotted:
                        # A settled future frees a worker slot; the
                        # oldest queued group inherits it now — its
                        # timeout clock must not start any earlier.
                        slot_at[unslotted.pop(0)] = time.monotonic()
                    try:
                        settle(i, future.result())
                    except BrokenProcessPool as exc:
                        fail(i, "worker-crash", type(exc).__name__,
                             str(exc) or "worker process died")
                        pool_dead = True
                    except Exception as exc:  # noqa: BLE001 — degrade
                        fail(i, "run", type(exc).__name__, str(exc))
                if pool_dead or not pending:
                    break
                now = time.monotonic()
                for future, i in list(pending.items()):
                    hb_path = (payloads[i][2]
                               if len(payloads[i]) > 2 else None)
                    age = _heartbeat_age(hb_path)
                    if age is not None and i not in start_at:
                        start_at[i] = now  # first heartbeat observed
                    if watchdog is not None and age is not None \
                            and age > watchdog:
                        pending.pop(future)
                        fail(i, "hang", "WatchdogTimeout",
                             f"no worker heartbeat for {age:.1f}s "
                             f"(watchdog {watchdog:g}s): point hung")
                        pool_dead = True
                        continue
                    # Timeout clock: from the first observed heartbeat
                    # (queue wait is not running time); when a group
                    # never heartbeats, fall back to the moment it
                    # acquired a worker slot, so a late-scheduled group
                    # is never billed for earlier groups' queue wait.
                    base = start_at.get(i)
                    if base is None:
                        base = slot_at.get(i)
                    if timeout is not None and base is not None \
                            and now - base > timeout:
                        pending.pop(future)
                        fail(i, "timeout", "TimeoutError",
                             f"group exceeded {timeout:g}s")
                        pool_dead = True
                if pool_dead:
                    break
        except BaseException:
            # Interrupt (SweepInterrupted lands here) or internal error:
            # never leave a pool of live workers behind.
            _kill_pool(pool)
            raise
        if pool_dead:
            # Innocent groups still in flight when the pool had to die
            # are re-queued without being charged an attempt.
            for future, i in pending.items():
                if i not in outcomes and i not in requeue:
                    requeue.append(i)
            _kill_pool(pool)
        else:
            pool.shutdown(wait=True)
        queue = requeue
        if queue:
            time.sleep(backoff * (2 ** round_no))
            round_no += 1
    return outcomes


def schedule_jobs(store: Any,
                  keys: Optional[Iterable[str]] = None,
                  jobs: Optional[int] = None,
                  timeout: Optional[float] = None,
                  retries: int = 2,
                  backoff: float = 0.5,
                  watchdog: Optional[float] = None) -> int:
    """Compute every pending point of a job store; returns how many ran.

    This is the one scheduler engine behind every frontend —
    :func:`run_sweep`, ``repro sweep``, and the ``repro serve`` daemon
    (DESIGN.md §5h).  ``store`` is a
    :class:`~repro.eval.service.jobstore.JobStore` (anything with the
    same surface works); the scheduler pulls its pending points
    (restricted to ``keys`` when given), groups them by functional key
    so every mode/knob of one (workload, scale, seed, config) shares a
    single functional trace, and dispatches the groups.  Completed and
    failed points are folded back into the store the moment they land —
    the store persists them (journal, result cache) and notifies its
    listeners, so progress is durable and observable mid-flight.

    Whenever a ``timeout`` or ``watchdog`` is armed the groups run on a
    worker pool even for ``jobs=1`` or a single group, so the
    heartbeat/deadline machinery protects *every* sweep — the old inline
    shortcut silently accepted both knobs and enforced neither.  The
    bare ``jobs=1``-and-unguarded case stays inline (no fork overhead,
    and in-process monkeypatching keeps working for tests).
    """
    todo = store.pending_points(keys)
    if not todo:
        return 0
    groups: Dict[_GroupKey, List[SweepPoint]] = {}
    for point in todo:
        groups.setdefault(_group_key(point), []).append(point)
    group_list = list(groups.values())

    cache = store.cache
    cache_root = str(cache.root) if cache is not None else None
    jobs = resolve_jobs(jobs)
    timeout = resolve_timeout(timeout)
    watchdog = resolve_watchdog(watchdog)
    guarded = timeout is not None or watchdog is not None
    use_pool = guarded or (jobs > 1 and len(group_list) > 1)

    absorbed = set()

    def _absorb(i: int, records: List[Tuple]) -> None:
        """Fold one group's final records into the store.

        Called the moment a group's outcome is final (including after
        retries), in the scheduling process — so completed work is
        persisted and journaled even if the sweep dies before the next
        group ends.
        """
        if i in absorbed:
            return
        absorbed.add(i)
        for point, record in zip(group_list[i], records):
            if record[0] == _OK:
                store.mark_done(point.key(), record[1])
            else:
                stage, err, msg, tb = record[1:5]
                att = record[5] if len(record) > 5 else 1
                store.mark_failed(FailedPoint(
                    point=point, stage=stage, error=err, message=msg,
                    traceback=clip_traceback(tb), attempts=att))

    for point in todo:
        store.mark_running(point.key())

    hb_dir: Optional[tempfile.TemporaryDirectory] = None
    try:
        if use_pool:
            # Heartbeat files let the dispatcher tell "hung" from
            # "queued" and give the watchdog its staleness signal.
            hb_dir = tempfile.TemporaryDirectory(prefix="repro-sweep-hb-")
            payloads: List[_Payload] = [
                (group, cache_root,
                 os.path.join(hb_dir.name, f"group-{i}.hb"))
                for i, group in enumerate(group_list)]
            _dispatch_parallel(payloads, jobs, timeout,
                               max(retries, 0), max(backoff, 0.0),
                               watchdog=watchdog, on_outcome=_absorb)
        else:
            for i, group in enumerate(group_list):
                payload: _Payload = (group, cache_root, None)
                try:
                    records = _run_group(payload)
                except Exception as exc:  # noqa: BLE001 — degrade
                    records = [(_ERR, "run", type(exc).__name__, str(exc),
                                clip_traceback(traceback.format_exc()))
                               for _ in group]
                _absorb(i, records)
    finally:
        if hb_dir is not None:
            hb_dir.cleanup()
    return len(todo)


def run_sweep(points: Iterable[SweepPoint],
              jobs: Optional[int] = None,
              cache: Optional[ResultCache] = None,
              timeout: Optional[float] = None,
              retries: int = 2,
              backoff: float = 0.5,
              journal: Optional[Union[os.PathLike, str,
                                      SweepJournal]] = None,
              resume: bool = False,
              watchdog: Optional[float] = None) -> SweepResults:
    """Run every distinct point; returns completed ``{point: SimResult}``.

    ``jobs``: worker processes (see :func:`resolve_jobs`); ``cache``: a
    :class:`ResultCache` to consult before simulating and to fill after;
    ``timeout``: per-group wall-clock budget in seconds (None → no limit,
    or ``$REPRO_SWEEP_TIMEOUT``); ``retries``: extra attempts for groups
    hit by worker crashes, hangs, or timeouts; ``backoff``: base seconds
    of the exponential retry delay; ``watchdog``: per-point heartbeat
    staleness bound (None → ``$REPRO_SWEEP_WATCHDOG``) — see
    :func:`resolve_watchdog`.

    ``journal``: a path (or :class:`~repro.eval.journal.SweepJournal`)
    to which every completed/failed point is appended the moment it
    lands, making the sweep durable against SIGKILL.  ``resume=True``
    (requires ``journal``) replays the journal and computes only the
    missing points; journaled failures are re-attempted.  While a
    journal is active, SIGINT/SIGTERM raise :class:`SweepInterrupted`
    (→ exit code 130/143) after the journal is consistent.

    Never raises for per-point failures — completed points are returned
    and failures are described on ``.failures``.  Call
    :meth:`SweepResults.raise_on_failure` for the old strict behavior.

    Since the sweep-service refactor this is a thin compatibility
    wrapper: it loads a :class:`~repro.eval.service.jobstore.JobStore`
    with the deduplicated points, satisfies what it can from the journal
    (``resume=True``) and the result cache, hands the rest to
    :func:`schedule_jobs` — the same engine the ``repro serve`` daemon
    drives — and reads the :class:`SweepResults` back out of the store.
    Results are bit-identical to the pre-refactor harness.
    """
    # Imported lazily: the jobstore module imports this module's
    # dataclasses at import time, so the dependency must stay one-way
    # at module load.
    from repro.eval.service.jobstore import JobStore

    ordered: List[SweepPoint] = []
    seen = set()
    for point in points:
        if point not in seen:
            seen.add(point)
            ordered.append(point)

    if isinstance(journal, SweepJournal):
        journal_obj: Optional[SweepJournal] = journal
    elif journal is not None:
        journal_obj = SweepJournal(journal)
    else:
        journal_obj = None
    if resume and journal_obj is None:
        raise ValueError("resume=True requires a journal "
                         "(pass journal=<path>)")

    store = JobStore(journal=journal_obj, cache=cache)
    for point in ordered:
        store.add(point)
    resumed = store.absorb_journal() if resume else 0
    if journal_obj is not None:
        journal_obj.record_start(len(ordered), resumed=resumed)
    store.absorb_cache()

    # While a journal is active, SIGINT/SIGTERM must flush-and-exit with
    # the conventional code instead of dying however the default
    # disposition decides.  Handlers are process-global state: install
    # only in the main thread, always restore.
    installed: List[Tuple[int, Any]] = []
    if journal_obj is not None \
            and threading.current_thread() is threading.main_thread():
        def _on_signal(signum, frame):
            raise SweepInterrupted(signum)
        for sig in (_signal.SIGINT, _signal.SIGTERM):
            try:
                installed.append((sig, _signal.signal(sig, _on_signal)))
            except (ValueError, OSError):  # pragma: no cover
                pass
    try:
        schedule_jobs(store, jobs=jobs, timeout=timeout, retries=retries,
                      backoff=backoff, watchdog=watchdog)
    finally:
        for sig, old in installed:
            try:
                _signal.signal(sig, old)
            except (ValueError, OSError):  # pragma: no cover
                pass

    return store.results_for(ordered)
