"""Crash-proof parallel sweep harness.

Every figure driver reduces to a set of :class:`SweepPoint`\\ s.
:func:`run_sweep` deduplicates them, satisfies what it can from the
persistent :class:`~repro.eval.result_cache.ResultCache`, groups the rest
by **functional key** — (workload, scale, seed, config), the tuple that
determines addresses and compute results — and runs the groups either
inline (``jobs=1``) or on a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Within a group only the first point pays functional cost: the group
loads the content-keyed :class:`~repro.sim.replay.FunctionalTrace` from
the persistent cache (or builds the workload once, records the trace,
and stores it), and every point — every offload mode, timing knob,
sample_cores, recovery rate, and fault plan, none of which can change
addresses or compute results — replays it.  ``$REPRO_NO_REPLAY``
restores the previous build-and-share-the-workload behavior.

Determinism: a group is self-contained — it derives everything from the
(name, scale, seed, config) tuple, so its results are identical whether it
runs in this process or a worker, and in any order.  ``jobs=1`` and
``jobs=N`` therefore produce bit-identical :class:`SimResult`\\ s.

Resilience: dispatch is ``submit()``-based with a per-group timeout and
bounded retry with exponential backoff.  A worker crash
(:class:`BrokenProcessPool`) or a hung group respawns the pool and retries
the affected groups; a group that keeps failing degrades gracefully — the
sweep returns every completed point, and each failed point appears as a
structured :class:`FailedPoint` on :attr:`SweepResults.failures` instead
of raising.  Workers report per-point outcomes, so one point's exception
never discards its group's completed siblings.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, TimeoutError as \
    FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.eval.result_cache import ResultCache, point_key
from repro.fault.plan import FaultPlan
from repro.offload.modes import ExecMode
from repro.sim.results import SimResult

#: Environment override for the default worker count (``--jobs``).
_ENV_JOBS = "REPRO_JOBS"
#: Environment override for the per-group timeout in seconds (0 = none).
_ENV_TIMEOUT = "REPRO_SWEEP_TIMEOUT"

#: Per-group record tags returned by workers.
_OK = "ok"
_ERR = "error"


@dataclass(frozen=True)
class SweepPoint:
    """One simulation to run: a workload under a mode on a config."""

    workload: str
    mode: ExecMode
    config: SystemConfig
    scale: float = 1.0 / 64.0
    seed: int = 42
    sample_cores: int = 4
    recovery_rate: float = 0.0
    fault_plan: Optional[FaultPlan] = None

    def key(self) -> str:
        """Content hash for the persistent result cache."""
        return point_key(self.workload, self.mode, self.config, self.scale,
                         self.seed, self.sample_cores, self.recovery_rate,
                         self.fault_plan)


@dataclass
class FailedPoint:
    """Structured record of one point that could not be simulated."""

    point: SweepPoint
    stage: str                 # "build" | "run" | "worker-crash" | "timeout"
    error: str                 # exception class name (or symbolic tag)
    message: str
    traceback: str = ""
    attempts: int = 1

    def summary(self) -> str:
        return (f"{self.point.workload}/{self.point.mode.value} "
                f"[{self.stage}] {self.error}: {self.message} "
                f"(after {self.attempts} attempt"
                f"{'s' if self.attempts != 1 else ''})")


class SweepResults(Dict[SweepPoint, SimResult]):
    """Completed points, plus structured records of any failures.

    Behaves exactly like the ``{point: SimResult}`` dict older callers
    expect; failed points are absent from the mapping and described on
    :attr:`failures`.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.failures: List[FailedPoint] = []

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_on_failure(self) -> "SweepResults":
        """Old strict behavior: raise if anything failed."""
        if self.failures:
            lines = "\n  ".join(f.summary() for f in self.failures)
            raise RuntimeError(
                f"{len(self.failures)} sweep point(s) failed:\n  {lines}")
        return self


def _warn_bad_env(var: str, value: str, fallback: str) -> None:
    """A malformed env override must never crash a sweep mid-flight."""
    import warnings
    warnings.warn(
        f"ignoring malformed ${var}={value!r}; using {fallback}",
        RuntimeWarning, stacklevel=3)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a jobs request: None → $REPRO_JOBS or 1; <=0 → all cores.

    A malformed ``$REPRO_JOBS`` (non-integer garbage) warns and falls
    back to serial instead of crashing the sweep.
    """
    if jobs is None:
        env = os.environ.get(_ENV_JOBS, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                _warn_bad_env(_ENV_JOBS, env, "1 (serial)")
                jobs = 1
        else:
            jobs = 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def resolve_timeout(timeout: Optional[float]) -> Optional[float]:
    """Per-group timeout: explicit argument, else $REPRO_SWEEP_TIMEOUT.

    ``None`` means "no timeout". An explicit ``timeout <= 0`` raises
    :class:`ValueError` — silently disabling the timeout a caller asked
    for hides hangs. The environment keeps its documented convention
    (``0`` = none, so shells can switch it off) and a malformed value
    warns and falls back to no timeout.
    """
    if timeout is not None:
        if timeout <= 0:
            raise ValueError(
                f"timeout must be positive (got {timeout!r}); "
                f"pass None for no timeout")
        return timeout
    env = os.environ.get(_ENV_TIMEOUT, "").strip()
    if env:
        try:
            value = float(env)
        except ValueError:
            _warn_bad_env(_ENV_TIMEOUT, env, "no timeout")
            return None
        return value if value > 0 else None
    return None


_GroupKey = Tuple[str, float, int, SystemConfig]


def _group_key(point: SweepPoint) -> _GroupKey:
    """The functional key: everything that determines addresses and
    compute results.  Modes, sample_cores, recovery rates, and fault
    plans ride on top (faults are semantically invariant), so all of
    them share one functional trace."""
    return (point.workload, point.scale, point.seed, point.config)


def _run_group(payload: Tuple[Sequence[SweepPoint], Optional[str]]
               ) -> List[Tuple]:
    """Run every point of one functional group, recording at most once.

    Module-level so it pickles for ProcessPoolExecutor; all points share
    the same (workload, scale, seed, config). ``payload`` carries the
    result-cache root (or None) so workers can reuse the persistent
    replay/build caches across groups and sessions.

    The group first tries the content-keyed functional trace: a hit
    means zero functional work for the whole group.  On a miss it builds
    the workload once (through the build cache when persistent), records
    the trace, stores it, and replays it for every point.  With replay
    disabled (``$REPRO_NO_REPLAY``) points share the built workload as
    before.

    The derived-geometry stats bundle rides the same way: a persistent
    group loads it once and every mode unpacks from it; a group that had
    to compute stats stores the bundle afterwards (unless
    ``$REPRO_NO_STATS_CACHE``).  Uncached groups still share stats
    across their points through the trace's in-process memo, writing
    nothing to disk.

    Returns one record per point — ``("ok", SimResult)`` or
    ``("error", stage, exc_type, message, traceback)`` — so a mid-group
    exception costs only its own point, never the group's completed work.
    """
    from repro.mem.address import AddressSpace
    from repro.sim.run import _ENV_NO_REPLAY, _ENV_NO_STATS_CACHE, \
        run_workload
    from repro.workloads import make_workload

    points, cache_root = payload
    first = points[0]
    cache = ResultCache(cache_root) if cache_root is not None else None
    use_replay = not os.environ.get(_ENV_NO_REPLAY)
    use_stats = use_replay and not os.environ.get(_ENV_NO_STATS_CACHE)
    trace = None
    stats_loaded = False
    try:
        if cache is not None and use_replay:
            from repro.workloads.build_cache import load_trace_cached
            trace = load_trace_cached(first.workload, first.scale,
                                      first.seed, first.config, cache=cache)
        if trace is None:
            if cache is not None:
                from repro.workloads.build_cache import \
                    build_workload_cached
                wl = build_workload_cached(first.workload, first.scale,
                                           first.seed, first.config,
                                           cache=cache)
            else:
                wl = make_workload(first.workload, scale=first.scale,
                                   seed=first.seed)
                wl.build(AddressSpace(first.config))
            if use_replay:
                if cache is not None:
                    from repro.workloads.build_cache import \
                        record_trace_cached
                    trace = record_trace_cached(wl, first.config,
                                                cache=cache)
                else:
                    # No persistent store: record in-memory only, so an
                    # uncached sweep stays side-effect free on disk.
                    from repro.eval.result_cache import config_fingerprint
                    from repro.sim.replay import record_trace
                    trace = record_trace(wl,
                                         config_fingerprint(first.config))
        if trace is not None and cache is not None and use_stats:
            from repro.workloads.build_cache import load_stats_cached
            stats_loaded = trace.adopt_stats(
                load_stats_cached(first.workload, first.scale, first.seed,
                                  first.config, cache=cache))
    except Exception as exc:  # noqa: BLE001 — reported per point
        record = (_ERR, "build", type(exc).__name__, str(exc),
                  traceback.format_exc())
        return [record for _ in points]

    source = trace if trace is not None else wl
    records: List[Tuple] = []
    for p in points:
        try:
            result = run_workload(source, p.mode, config=p.config,
                                  scale=p.scale, seed=p.seed,
                                  sample_cores=p.sample_cores,
                                  recovery_rate=p.recovery_rate,
                                  fault_plan=p.fault_plan)
            records.append((_OK, result))
        except Exception as exc:  # noqa: BLE001 — reported per point
            records.append((_ERR, "run", type(exc).__name__, str(exc),
                            traceback.format_exc()))

    if (trace is not None and cache is not None and use_stats
            and not stats_loaded):
        # Persist the group's computed geometry so the next session's
        # warm runs load instead of recompute.  Pure bookkeeping: a
        # failure here must never cost the group's completed points.
        try:
            from repro.workloads.build_cache import store_stats_cached
            bundle = trace.export_stats()
            if bundle is not None:
                store_stats_cached(bundle, first.config, cache=cache)
        except Exception:  # noqa: BLE001 — best-effort persistence
            pass
    return records


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down hard: cancel queued work, terminate live workers.

    Used after a timeout or a broken pool — the executor may still hold a
    hung or poisoned worker, and a graceful shutdown would block on it.
    """
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # noqa: BLE001 — teardown must not raise
        pass
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            proc.terminate()
        except Exception:  # noqa: BLE001
            pass


def _dispatch_parallel(payloads: List[Tuple], jobs: int,
                       timeout: Optional[float], retries: int,
                       backoff: float) -> Dict[int, List[Tuple]]:
    """Run payloads on worker pools; returns {payload index: records}.

    A group whose worker crashes or times out is retried up to ``retries``
    extra times on a fresh pool, sleeping ``backoff * 2**attempt`` between
    rounds.  Groups that exhaust their retries yield synthetic error
    records, never exceptions.
    """
    outcomes: Dict[int, List[Tuple]] = {}
    attempts = {i: 0 for i in range(len(payloads))}
    queue = list(range(len(payloads)))
    round_no = 0
    while queue:
        workers = min(jobs, len(queue))
        pool = ProcessPoolExecutor(max_workers=workers)
        futures = {i: pool.submit(_run_group, payloads[i]) for i in queue}
        requeue: List[int] = []
        pool_dead = False
        for i, future in futures.items():
            tag: Optional[Tuple] = None
            try:
                outcomes[i] = future.result(timeout=timeout)
                continue
            except FuturesTimeoutError:
                tag = ("timeout", "TimeoutError",
                       f"group exceeded {timeout:g}s")
                pool_dead = True   # the worker is still occupied: kill it
            except BrokenProcessPool as exc:
                tag = ("worker-crash", type(exc).__name__,
                       str(exc) or "worker process died")
                pool_dead = True
            except Exception as exc:  # noqa: BLE001 — degrade, don't raise
                tag = ("run", type(exc).__name__, str(exc))
            attempts[i] += 1
            if attempts[i] <= retries:
                requeue.append(i)
            else:
                stage, err, msg = tag
                outcomes[i] = [(_ERR, stage, err, msg, "")
                               for _ in payloads[i][0]]
        if pool_dead:
            _kill_pool(pool)
        else:
            pool.shutdown(wait=True)
        queue = requeue
        if queue:
            time.sleep(backoff * (2 ** round_no))
            round_no += 1
    return outcomes


def run_sweep(points: Iterable[SweepPoint],
              jobs: Optional[int] = None,
              cache: Optional[ResultCache] = None,
              timeout: Optional[float] = None,
              retries: int = 2,
              backoff: float = 0.5) -> SweepResults:
    """Run every distinct point; returns completed ``{point: SimResult}``.

    ``jobs``: worker processes (see :func:`resolve_jobs`); ``cache``: a
    :class:`ResultCache` to consult before simulating and to fill after;
    ``timeout``: per-group wall-clock budget in seconds (None → no limit,
    or ``$REPRO_SWEEP_TIMEOUT``); ``retries``: extra attempts for groups
    hit by worker crashes or timeouts; ``backoff``: base seconds of the
    exponential retry delay.

    Never raises for per-point failures — completed points are returned
    and failures are described on ``.failures``.  Call
    :meth:`SweepResults.raise_on_failure` for the old strict behavior.
    """
    ordered: List[SweepPoint] = []
    seen = set()
    for point in points:
        if point not in seen:
            seen.add(point)
            ordered.append(point)

    results = SweepResults()
    completed: Dict[SweepPoint, SimResult] = {}
    todo: List[SweepPoint] = []
    if cache is not None:
        for point in ordered:
            hit = cache.lookup(point.key())
            if isinstance(hit, SimResult):
                completed[point] = hit
            else:
                todo.append(point)
    else:
        todo = ordered

    groups: Dict[_GroupKey, List[SweepPoint]] = {}
    for point in todo:
        groups.setdefault(_group_key(point), []).append(point)
    group_list = list(groups.values())

    cache_root = str(cache.root) if cache is not None else None
    payloads = [(group, cache_root) for group in group_list]
    jobs = resolve_jobs(jobs)
    timeout = resolve_timeout(timeout)

    if jobs == 1 or len(group_list) <= 1:
        outcomes = {}
        for i, payload in enumerate(payloads):
            try:
                outcomes[i] = _run_group(payload)
            except Exception as exc:  # noqa: BLE001 — degrade, don't raise
                outcomes[i] = [(_ERR, "run", type(exc).__name__, str(exc),
                                traceback.format_exc())
                               for _ in payload[0]]
    else:
        outcomes = _dispatch_parallel(payloads, jobs, timeout,
                                      max(retries, 0), max(backoff, 0.0))

    for i, group in enumerate(group_list):
        for point, record in zip(group, outcomes[i]):
            if record[0] == _OK:
                completed[point] = record[1]
                if cache is not None:
                    cache.store(point.key(), record[1])
            else:
                _, stage, err, msg, tb = (record + ("",))[:5]
                results.failures.append(FailedPoint(
                    point=point, stage=stage, error=err, message=msg,
                    traceback=tb, attempts=1 + max(retries, 0)
                    if stage in ("timeout", "worker-crash") else 1))

    for point in ordered:
        if point in completed:
            results[point] = completed[point]
    return results
