"""Parallel sweep harness: fan (workload, mode, config) points over cores.

Every figure driver reduces to a set of :class:`SweepPoint`\\ s.
:func:`run_sweep` deduplicates them, satisfies what it can from the
persistent :class:`~repro.eval.result_cache.ResultCache`, groups the rest
by (workload, scale, seed, sample_cores, config) so each group builds its
workload's data and traces exactly once, and runs the groups either inline
(``jobs=1``) or on a :class:`~concurrent.futures.ProcessPoolExecutor`.

Determinism: a group is self-contained — it derives everything from the
(name, scale, seed, config) tuple, so its results are identical whether it
runs in this process or a worker, and in any order.  ``jobs=1`` and
``jobs=N`` therefore produce bit-identical :class:`SimResult`\\ s.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.eval.result_cache import ResultCache, point_key
from repro.offload.modes import ExecMode
from repro.sim.results import SimResult

#: Environment override for the default worker count (``--jobs``).
_ENV_JOBS = "REPRO_JOBS"


@dataclass(frozen=True)
class SweepPoint:
    """One simulation to run: a workload under a mode on a config."""

    workload: str
    mode: ExecMode
    config: SystemConfig
    scale: float = 1.0 / 64.0
    seed: int = 42
    sample_cores: int = 4
    recovery_rate: float = 0.0

    def key(self) -> str:
        """Content hash for the persistent result cache."""
        return point_key(self.workload, self.mode, self.config, self.scale,
                         self.seed, self.sample_cores, self.recovery_rate)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a jobs request: None → $REPRO_JOBS or 1; <=0 → all cores."""
    if jobs is None:
        env = os.environ.get(_ENV_JOBS, "").strip()
        jobs = int(env) if env else 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


_GroupKey = Tuple[str, float, int, int, SystemConfig, float]


def _group_key(point: SweepPoint) -> _GroupKey:
    return (point.workload, point.scale, point.seed, point.sample_cores,
            point.config, point.recovery_rate)


def _run_group(payload: Tuple[Sequence[SweepPoint], Optional[str]]
               ) -> List[SimResult]:
    """Run every mode of one group, building the workload once.

    Module-level so it pickles for ProcessPoolExecutor; all points share
    the same (workload, scale, seed, sample_cores, config). ``payload``
    carries the result-cache root (or None) so workers can reuse the
    persistent workload-build cache across groups and sessions.
    """
    from repro.mem.address import AddressSpace
    from repro.sim.run import run_workload
    from repro.workloads import make_workload

    points, cache_root = payload
    first = points[0]
    if cache_root is not None:
        from repro.workloads.build_cache import build_workload_cached
        wl = build_workload_cached(first.workload, first.scale, first.seed,
                                   first.config,
                                   cache=ResultCache(cache_root))
    else:
        wl = make_workload(first.workload, scale=first.scale,
                           seed=first.seed)
        wl.build(AddressSpace(first.config))
    return [run_workload(wl, p.mode, config=p.config, scale=p.scale,
                         seed=p.seed, sample_cores=p.sample_cores,
                         recovery_rate=p.recovery_rate)
            for p in points]


def run_sweep(points: Iterable[SweepPoint],
              jobs: Optional[int] = None,
              cache: Optional[ResultCache] = None
              ) -> Dict[SweepPoint, SimResult]:
    """Run every distinct point; returns {point: SimResult}.

    ``jobs``: worker processes (see :func:`resolve_jobs`); ``cache``: a
    :class:`ResultCache` to consult before simulating and to fill after.
    """
    ordered: List[SweepPoint] = []
    seen = set()
    for point in points:
        if point not in seen:
            seen.add(point)
            ordered.append(point)

    results: Dict[SweepPoint, SimResult] = {}
    todo: List[SweepPoint] = []
    if cache is not None:
        for point in ordered:
            hit = cache.lookup(point.key())
            if isinstance(hit, SimResult):
                results[point] = hit
            else:
                todo.append(point)
    else:
        todo = ordered

    groups: Dict[_GroupKey, List[SweepPoint]] = {}
    for point in todo:
        groups.setdefault(_group_key(point), []).append(point)
    group_list = list(groups.values())

    cache_root = str(cache.root) if cache is not None else None
    payloads = [(group, cache_root) for group in group_list]
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(group_list) <= 1:
        batches = [_run_group(payload) for payload in payloads]
    else:
        workers = min(jobs, len(group_list))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            batches = list(pool.map(_run_group, payloads))

    for group, batch in zip(group_list, batches):
        for point, result in zip(group, batch):
            results[point] = result
            if cache is not None:
                cache.store(point.key(), result)
    return {point: results[point] for point in ordered}
