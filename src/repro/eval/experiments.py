"""Per-figure experiment drivers (Figs 1, 9-17).

Each function returns plain data structures (dicts keyed by workload and
mode/sweep point) so benchmarks can print them and tests can assert the
paper's shape claims against them. ``run_all_modes`` memoizes full sweeps —
several figures share the same runs.

All drivers funnel through :func:`repro.eval.sweep.run_sweep`, so
``EvalConfig(jobs=N)`` parallelizes any figure and
``EvalConfig(use_cache=True)`` persists results across processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.engine.stats import geomean
from repro.eval.result_cache import ResultCache, config_fingerprint, \
    get_default_cache
from repro.eval.sweep import SweepPoint, run_sweep
from repro.isa.instructions import UopKind
from repro.mem.address import AddressSpace
from repro.mem.locks import LockKind, LockModel, LockStats, \
    contention_eliminated
from repro.noc.message import MessageClass, MessageType
from repro.offload.modes import ExecMode
from repro.sim import ideal_traffic, run_workload
from repro.sim.results import SimResult
from repro.workloads import Workload, all_workload_names, make_workload

DEFAULT_MODES: Tuple[ExecMode, ...] = (
    ExecMode.BASE, ExecMode.INST, ExecMode.SINGLE, ExecMode.NS_CORE,
    ExecMode.NS_NO_COMP, ExecMode.NS, ExecMode.NS_NO_SYNC,
    ExecMode.NS_DECOUPLE,
)

AFFINE_WORKLOADS = ("pathfinder", "srad", "hotspot", "hotspot3D",
                    "histogram")
ATOMIC_WORKLOADS = ("bfs_push", "pr_push", "sssp")
SIMD_WORKLOADS = ("pathfinder", "srad", "hotspot", "hotspot3D")


@dataclass(frozen=True)
class EvalConfig:
    """Shared experiment parameters.

    ``jobs`` fans sweep points over that many worker processes (None →
    ``$REPRO_JOBS`` or serial; 0 → all cores); results are bit-identical
    regardless. ``use_cache`` consults and fills the persistent on-disk
    result cache (see :mod:`repro.eval.result_cache`).
    """

    scale: float = 1.0 / 64.0
    seed: int = 42
    sample_cores: int = 4
    workloads: Tuple[str, ...] = ()
    config: Optional[SystemConfig] = None
    jobs: Optional[int] = None
    use_cache: bool = False

    def workload_names(self) -> List[str]:
        return list(self.workloads) if self.workloads \
            else all_workload_names()

    def system(self) -> SystemConfig:
        return self.config or SystemConfig.ooo8()

    def result_cache(self) -> Optional[ResultCache]:
        return get_default_cache() if self.use_cache else None

    def point(self, workload: str, mode: ExecMode,
              system: Optional[SystemConfig] = None) -> SweepPoint:
        """A sweep point for this config (``system`` overrides the preset)."""
        return SweepPoint(workload=workload, mode=mode,
                          config=system or self.system(), scale=self.scale,
                          seed=self.seed, sample_cores=self.sample_cores)

    def sweep(self, points: Sequence[SweepPoint]
              ) -> Dict[SweepPoint, SimResult]:
        return run_sweep(points, jobs=self.jobs, cache=self.result_cache())


_SWEEP_CACHE: Dict[Tuple, Dict[str, Dict[ExecMode, SimResult]]] = {}


def run_all_modes(cfg: EvalConfig,
                  modes: Sequence[ExecMode] = DEFAULT_MODES
                  ) -> Dict[str, Dict[ExecMode, SimResult]]:
    """Run every workload under every mode (memoized per EvalConfig).

    The memo key hashes the full ``SystemConfig`` contents, so two equal
    configs share an entry no matter how they were constructed. Each
    workload's input data and traces are built once and reused across all
    modes (the sweep harness groups points per workload+config).
    """
    key = (cfg.scale, cfg.seed, cfg.sample_cores,
           tuple(cfg.workload_names()), config_fingerprint(cfg.system()),
           tuple(modes))
    if key in _SWEEP_CACHE:
        return _SWEEP_CACHE[key]
    points = [cfg.point(name, mode)
              for name in cfg.workload_names() for mode in modes]
    by_point = cfg.sweep(points)
    results: Dict[str, Dict[ExecMode, SimResult]] = {}
    for point, result in by_point.items():
        results.setdefault(point.workload, {})[point.mode] = result
    _SWEEP_CACHE[key] = results
    return results


# ----------------------------------------------------------------------
# Figure 1
# ----------------------------------------------------------------------
def fig1a_stream_op_breakdown(cfg: EvalConfig = EvalConfig()
                              ) -> Dict[str, Dict[str, float]]:
    """Fraction of dynamic micro-ops associated with streams, by category."""
    results = run_all_modes(cfg, modes=(ExecMode.BASE,))
    out: Dict[str, Dict[str, float]] = {}
    for name, by_mode in results.items():
        uops = by_mode[ExecMode.BASE].baseline_uops
        total = uops.total()
        out[name] = {
            "load": (uops.get(UopKind.STREAM_LOAD)
                     + uops.get(UopKind.STREAM_COMPUTE)) / total,
            "store": uops.get(UopKind.STREAM_STORE) / total,
            "atomic": uops.get(UopKind.STREAM_ATOMIC) / total,
            "update": uops.get(UopKind.STREAM_UPDATE) / total,
            "reduce": uops.get(UopKind.STREAM_REDUCE) / total,
            "stream_total": uops.stream_fraction(),
        }
    return out


def fig1b_ideal_traffic(cfg: EvalConfig = EvalConfig()
                        ) -> Dict[str, Dict[str, float]]:
    """Bytes x hops of No-Priv$, Perf-Priv$ and Perf-Near-LLC, normalized
    to No-Priv$."""
    out: Dict[str, Dict[str, float]] = {}
    system = cfg.system()
    for name in cfg.workload_names():
        raw = ideal_traffic(name, config=system, scale=cfg.scale,
                            seed=cfg.seed, sample_cores=cfg.sample_cores)
        base = max(raw["no_priv"], 1e-9)
        out[name] = {k: v / base for k, v in raw.items()}
    return out


# ----------------------------------------------------------------------
# Figures 9-12 (main results)
# ----------------------------------------------------------------------
def fig9_overall_speedup(cfg: EvalConfig = EvalConfig()
                         ) -> Dict[str, Dict[str, float]]:
    """Speedup over the baseline OOO8 core, per workload and mode."""
    results = run_all_modes(cfg)
    out: Dict[str, Dict[str, float]] = {}
    for name, by_mode in results.items():
        base = by_mode[ExecMode.BASE]
        out[name] = {mode.value: r.speedup_over(base) if mode
                     is not ExecMode.BASE else 1.0
                     for mode, r in by_mode.items()}
    out["geomean"] = {
        mode.value: geomean([out[n][mode.value]
                             for n in cfg.workload_names()])
        for mode in DEFAULT_MODES
    }
    return out


def fig10_energy_performance(cfg: EvalConfig = EvalConfig(),
                             core_types: Sequence[str] = ("IO4", "OOO4",
                                                          "OOO8")
                             ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Normalized energy and performance per core type and mode.

    Returns {core_type: {mode: {"speedup": s, "energy_eff": e}}}, both
    relative to that core type's baseline.
    """
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for core_type in core_types:
        system = {"IO4": SystemConfig.io4, "OOO4": SystemConfig.ooo4,
                  "OOO8": SystemConfig.ooo8}[core_type]()
        sub = replace(cfg, config=system)
        results = run_all_modes(sub)
        per_mode: Dict[str, Dict[str, float]] = {}
        for mode in DEFAULT_MODES:
            speedups, energies = [], []
            for name in sub.workload_names():
                base = results[name][ExecMode.BASE]
                r = results[name][mode]
                speedups.append(r.speedup_over(base) if mode
                                is not ExecMode.BASE else 1.0)
                energies.append(r.energy_efficiency_over(base) if mode
                                is not ExecMode.BASE else 1.0)
            per_mode[mode.value] = {"speedup": geomean(speedups),
                                    "energy_eff": geomean(energies)}
        out[core_type] = per_mode
    return out


def fig11_offload_fractions(cfg: EvalConfig = EvalConfig(),
                            mode: ExecMode = ExecMode.NS
                            ) -> Dict[str, Dict[str, float]]:
    """Stream-associated vs actually-offloaded micro-op fractions (Fig 11)."""
    results = run_all_modes(cfg)
    out: Dict[str, Dict[str, float]] = {}
    for name, by_mode in results.items():
        r = by_mode[mode]
        out[name] = {
            "stream_associated": r.offloadable_fraction(),
            "offloaded": r.offloaded_fraction(),
        }
    assoc = [v["stream_associated"] for v in out.values()
             if v["stream_associated"] > 0]
    offl = [v["offloaded"] for v in out.values() if v["offloaded"] > 0]
    out["average"] = {
        "stream_associated": sum(assoc) / max(len(assoc), 1),
        "offloaded": sum(offl) / max(len(offl), 1),
    }
    return out


def fig12_traffic_breakdown(cfg: EvalConfig = EvalConfig()
                            ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """NoC traffic by class, normalized to the baseline's total (Fig 12)."""
    results = run_all_modes(cfg)
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name, by_mode in results.items():
        base_total = max(
            by_mode[ExecMode.BASE].traffic.total_byte_hops, 1e-9)
        out[name] = {}
        for mode, r in by_mode.items():
            breakdown = r.traffic.breakdown()
            out[name][mode.value] = {
                cls: v / base_total for cls, v in breakdown.items()
            }
            out[name][mode.value]["total"] = \
                r.traffic.total_byte_hops / base_total
    return out


# ----------------------------------------------------------------------
# Figures 13-17 (sensitivity studies)
# ----------------------------------------------------------------------
def _geomean_speedup(results: Dict[SweepPoint, SimResult], cfg: EvalConfig,
                     system: SystemConfig, mode: ExecMode,
                     names: Sequence[str]) -> float:
    """Geomean speedup of ``mode`` over BASE from a sweep's results."""
    speeds = []
    for name in names:
        base = results[cfg.point(name, ExecMode.BASE, system)]
        r = results[cfg.point(name, mode, system)]
        speeds.append(r.speedup_over(base))
    return geomean(speeds)


def fig13_scm_latency_sensitivity(cfg: EvalConfig = EvalConfig(),
                                  latencies: Sequence[int] = (1, 4, 8, 16),
                                  modes: Sequence[ExecMode] = (
                                      ExecMode.NS, ExecMode.NS_NO_SYNC,
                                      ExecMode.NS_DECOUPLE),
                                  ) -> Dict[str, Dict[int, float]]:
    """Performance vs SE_L3 -> SCM issue latency, normalized to NS @ 1."""
    names = cfg.workload_names()
    systems = {latency: cfg.system().with_se(scm_issue_latency=latency)
               for latency in latencies}
    points = [cfg.point(name, mode, system)
              for system in systems.values()
              for mode in (*modes, ExecMode.BASE)
              for name in names]
    results = cfg.sweep(points)
    raw = {mode.value: {latency: _geomean_speedup(results, cfg, system,
                                                  mode, names)
                        for latency, system in systems.items()}
           for mode in modes}
    ref = raw[ExecMode.NS.value][latencies[0]]
    return {mode: {lat: v / ref for lat, v in series.items()}
            for mode, series in raw.items()}


def fig14_scc_rob_sensitivity(cfg: EvalConfig = EvalConfig(),
                              rob_sizes: Sequence[int] = (8, 16, 32, 64),
                              mode: ExecMode = ExecMode.NS_DECOUPLE
                              ) -> Dict[str, Dict[int, float]]:
    """Per-workload performance vs total SCC ROB entries (normalized to
    the largest size)."""
    names = cfg.workload_names()
    systems = {rob: cfg.system().with_se(scc_rob_entries=rob)
               for rob in rob_sizes}
    points = [cfg.point(name, m, system)
              for system in systems.values()
              for m in (ExecMode.BASE, mode)
              for name in names]
    results = cfg.sweep(points)
    out: Dict[str, Dict[int, float]] = {name: {} for name in names}
    for rob, system in systems.items():
        for name in names:
            base = results[cfg.point(name, ExecMode.BASE, system)]
            r = results[cfg.point(name, mode, system)]
            out[name][rob] = r.speedup_over(base)
    biggest = rob_sizes[-1]
    return {name: {rob: v / series[biggest] for rob, v in series.items()}
            for name, series in out.items()}


def fig15_affine_range_generation(cfg: EvalConfig = EvalConfig(),
                                  workloads: Sequence[str] = AFFINE_WORKLOADS
                                  ) -> Dict[str, Dict[str, float]]:
    """SE_core- vs SE_L3-generated affine ranges: speedup and traffic (NS).

    Returns per-workload {speedup_ratio, traffic_ratio} of core-generated
    over L3-generated (paper: +5% performance, -15% traffic).
    """
    at_core = cfg.system().with_se(affine_ranges_at_core=True)
    at_l3 = cfg.system().with_se(affine_ranges_at_core=False)
    points = [cfg.point(name, ExecMode.NS, system)
              for system in (at_core, at_l3) for name in workloads]
    results = cfg.sweep(points)
    out: Dict[str, Dict[str, float]] = {}
    for name in workloads:
        r_core = results[cfg.point(name, ExecMode.NS, at_core)]
        r_l3 = results[cfg.point(name, ExecMode.NS, at_l3)]
        out[name] = {
            "speedup_ratio": r_l3.cycles / r_core.cycles,
            "traffic_ratio": (r_core.traffic.total_byte_hops
                              / max(r_l3.traffic.total_byte_hops, 1e-9)),
        }
    return out


def fig16_lock_types(cfg: EvalConfig = EvalConfig(),
                     workloads: Sequence[str] = ATOMIC_WORKLOADS,
                     modes: Sequence[ExecMode] = (ExecMode.NS,
                                                  ExecMode.NS_NO_SYNC)
                     ) -> Dict[str, Dict[str, float]]:
    """Exclusive vs MRSW lock performance plus contention statistics."""
    mrsw_cfg = cfg.system().with_se(mrsw_lock=True)
    excl_cfg = cfg.system().with_se(mrsw_lock=False)
    points = [cfg.point(name, mode, system)
              for system in (mrsw_cfg, excl_cfg)
              for mode in modes for name in workloads]
    results = cfg.sweep(points)
    out: Dict[str, Dict[str, float]] = {}
    for name in workloads:
        row: Dict[str, float] = {}
        for mode in modes:
            r_mrsw = results[cfg.point(name, mode, mrsw_cfg)]
            r_excl = results[cfg.point(name, mode, excl_cfg)]
            row[f"{mode.value}_mrsw_speedup"] = \
                r_excl.cycles / r_mrsw.cycles
            if mode is ExecMode.NS and r_mrsw.lock_stats is not None \
                    and r_excl.lock_stats is not None:
                row["contention_eliminated"] = contention_eliminated(
                    r_excl.lock_stats, r_mrsw.lock_stats)
                row["mrsw_conflict_rate"] = r_mrsw.lock_stats.conflict_rate
        out[name] = row
    return out


def fig17_scalar_pe(cfg: EvalConfig = EvalConfig(),
                    mode: ExecMode = ExecMode.NS_DECOUPLE
                    ) -> Dict[str, float]:
    """Speedup of having the scalar PE, per workload (NS_decouple)."""
    with_pe = cfg.system().with_se(scalar_pe=True)
    without = cfg.system().with_se(scalar_pe=False)
    points = [cfg.point(name, mode, system)
              for system in (with_pe, without)
              for name in cfg.workload_names()]
    results = cfg.sweep(points)
    out: Dict[str, float] = {}
    for name in cfg.workload_names():
        r_with = results[cfg.point(name, mode, with_pe)]
        r_without = results[cfg.point(name, mode, without)]
        out[name] = r_without.cycles / r_with.cycles
    out["geomean"] = geomean([v for k, v in out.items() if k != "geomean"])
    return out
