"""Plain-text table formatting for the benchmark harness."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

Cell = Union[str, float, int]


def _fmt(cell: Cell) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]],
                 title: Optional[str] = None) -> str:
    """Render an aligned text table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, series: Dict[str, float],
                  normalize_to: Optional[str] = None) -> str:
    """Render one named series (e.g. a figure's bars) on one line."""
    items = series
    if normalize_to is not None and series.get(normalize_to):
        base = series[normalize_to]
        items = {k: v / base for k, v in series.items()}
    parts = [f"{k}={_fmt(v)}" for k, v in items.items()]
    return f"{name}: " + "  ".join(parts)
