"""Content-keyed cache for built workloads.

``Workload.build`` is a real cost at paper scale — the Kronecker
generators plus the functional executions (BFS levels, PageRank sweeps)
are Python loops that dwarf the simulation itself once ``scale``
approaches 1.0, and every figure driver rebuilds the same inputs for
each of its modes. Building is deterministic in (workload kind, scale,
seed, machine config), so the finished object — address space, input
arrays, kernels, and traces — can be pickled once and reloaded for every
subsequent run.

Entries live in the same ``.repro_cache/`` store as simulation results
(:mod:`repro.eval.result_cache`), under keys that mix in the workload's
class identity and a build-schema version, so result entries and build
entries can never collide and semantics changes invalidate cleanly.
"""

from __future__ import annotations

import pickle
import warnings
from typing import Optional

from repro.config import SystemConfig
from repro.eval.result_cache import KIND_BUILD, KIND_REPLAY, KIND_STATS, \
    ResultCache, config_fingerprint, fingerprint, get_default_cache
from repro.mem.address import AddressSpace
from repro.workloads.base import Workload, make_workload, _REGISTRY

#: Bump when Workload.build semantics change (trace layout, allocation
#: order, functional execution) in a way that invalidates pickled builds.
BUILD_SCHEMA = 1


def _store_degraded(cache: ResultCache, key: str, value,
                    kind: str, label: str, name: str,
                    scale: float) -> bool:
    """Store an artifact, degrading every failure to at most a warning.

    Three distinct failure classes, three distinct reactions: an
    unpicklable value and an oversize entry are caller-actionable and
    warn once per call; a write the *filesystem* refused (ENOSPC,
    EACCES, chaos injection) is already counted by the store
    (``cache.write_errors``, shown by ``repro cache stats``) and stays
    silent — an unattended sweep on a full disk must not drown in
    warnings while it keeps computing.
    """
    before = cache.oversize_skips
    try:
        stored = cache.store(key, value, kind=kind)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        warnings.warn(f"{label} cache: {name} (scale={scale:g}) is "
                      f"unpicklable, not cached: {exc}", stacklevel=3)
        return False
    if not stored and cache.oversize_skips > before:
        warnings.warn(f"{label} cache: {name} (scale={scale:g}) exceeds "
                      f"$REPRO_CACHE_MAX_MB, not cached", stacklevel=3)
    return stored


def build_key(name: str, scale: float, seed: int,
              config: SystemConfig) -> str:
    """Content hash identifying one deterministic workload build.

    The machine config participates because :class:`AddressSpace` layout
    (and therefore every trace's physical addresses) derives from it.
    """
    cls = _REGISTRY.get(name)
    return fingerprint({
        "kind": "workload-build",
        "schema": BUILD_SCHEMA,
        "workload": name,
        "class": f"{cls.__module__}.{cls.__qualname__}" if cls else name,
        "scale": scale,
        "seed": seed,
        "config": config,
    })


def build_workload_cached(name: str, scale: float, seed: int,
                          config: SystemConfig,
                          space: Optional[AddressSpace] = None,
                          cache: Optional[ResultCache] = None) -> Workload:
    """Return a built workload, loading it from the cache when possible.

    A custom ``space`` opts out of caching (the key only covers the
    config-derived default layout). An unpicklable build, or one larger
    than ``$REPRO_CACHE_MAX_MB``, degrades to a plain miss with a
    one-line warning rather than failing the run.
    """
    if space is not None:
        wl = make_workload(name, scale=scale, seed=seed)
        wl.build(space)
        return wl
    cache = cache if cache is not None else get_default_cache()
    key = build_key(name, scale, seed, config)
    cached = cache.lookup(key)
    if isinstance(cached, Workload):
        return cached
    wl = make_workload(name, scale=scale, seed=seed)
    wl.build(AddressSpace(config))
    _store_degraded(cache, key, wl, KIND_BUILD, "build", name, scale)
    return wl


# ----------------------------------------------------------------------
# Functional-trace (replay) artifacts
# ----------------------------------------------------------------------
def trace_key(name: str, scale: float, seed: int,
              config: SystemConfig) -> str:
    """Content hash identifying one workload's functional trace.

    Same identity tuple as :func:`build_key` — the trace is derived data
    of the build — plus the replay schema so layout changes invalidate
    stored traces without touching builds.
    """
    from repro.sim.replay import REPLAY_SCHEMA
    cls = _REGISTRY.get(name)
    return fingerprint({
        "kind": "functional-trace",
        "schema": BUILD_SCHEMA,
        "replay_schema": REPLAY_SCHEMA,
        "workload": name,
        "class": f"{cls.__module__}.{cls.__qualname__}" if cls else name,
        "scale": scale,
        "seed": seed,
        "config": config,
    })


def load_trace_cached(name: str, scale: float, seed: int,
                      config: SystemConfig,
                      cache: Optional[ResultCache] = None):
    """The cached :class:`~repro.sim.replay.FunctionalTrace`, or None.

    Anything that is not a schema-current FunctionalTrace for this
    workload is a miss — corruption is already quarantined by the store
    layer, and a foreign value under this key simply falls back to the
    live build path.
    """
    from repro.sim.replay import REPLAY_SCHEMA, FunctionalTrace
    cache = cache if cache is not None else get_default_cache()
    cached = cache.lookup(trace_key(name, scale, seed, config))
    if isinstance(cached, FunctionalTrace) \
            and cached.schema == REPLAY_SCHEMA \
            and cached.workload == name:
        return cached
    return None


def store_trace_cached(trace, config: SystemConfig,
                       cache: Optional[ResultCache] = None) -> bool:
    """Persist a recorded FunctionalTrace; degrades to a warning.

    Oversize traces (over ``$REPRO_CACHE_MAX_MB``) and unpicklable ones
    must cost a warning, never the run.
    """
    cache = cache if cache is not None else get_default_cache()
    key = trace_key(trace.workload, trace.scale, trace.seed, config)
    return _store_degraded(cache, key, trace, KIND_REPLAY, "replay",
                           trace.workload, trace.scale)


def record_trace_cached(wl: Workload, config: SystemConfig,
                        cache: Optional[ResultCache] = None):
    """Record a built workload's FunctionalTrace and persist it."""
    from repro.sim.replay import record_trace
    trace = record_trace(wl, config_fingerprint(config))
    store_trace_cached(trace, config, cache=cache)
    return trace


# ----------------------------------------------------------------------
# Derived stream-geometry (stats) bundles
# ----------------------------------------------------------------------
def stats_key(name: str, scale: float, seed: int,
              config: SystemConfig) -> str:
    """Content hash identifying one trace's derived geometry bundle.

    Keyed by the functional trace's content key plus the config
    fingerprint (geometry depends on the mesh/page layout) and the
    bundle schema, so layout changes invalidate bundles without
    touching traces or builds.
    """
    from repro.sim.replay import STATS_SCHEMA
    return fingerprint({
        "kind": "stream-stats",
        "stats_schema": STATS_SCHEMA,
        "trace": trace_key(name, scale, seed, config),
        "config_fp": config_fingerprint(config),
    })


def load_stats_cached(name: str, scale: float, seed: int,
                      config: SystemConfig,
                      cache: Optional[ResultCache] = None):
    """The cached :class:`~repro.sim.replay.StatsBundle`, or None.

    Anything that is not a schema-current StatsBundle for this workload
    *recorded under this exact config fingerprint* is a miss — a bundle
    derived under a different config would carry wrong banks and hop
    counts, so a fingerprint mismatch falls back to recomputation.
    """
    from repro.sim.replay import STATS_SCHEMA, StatsBundle
    cache = cache if cache is not None else get_default_cache()
    cached = cache.lookup(stats_key(name, scale, seed, config))
    if isinstance(cached, StatsBundle) \
            and cached.schema == STATS_SCHEMA \
            and cached.workload == name \
            and cached.config_fp == config_fingerprint(config):
        return cached
    return None


def store_stats_cached(bundle, config: SystemConfig,
                       cache: Optional[ResultCache] = None) -> bool:
    """Persist a derived-geometry StatsBundle; degrades to a warning."""
    cache = cache if cache is not None else get_default_cache()
    key = stats_key(bundle.workload, bundle.scale, bundle.seed, config)
    return _store_degraded(cache, key, bundle, KIND_STATS, "stats",
                           bundle.workload, bundle.scale)
