"""Content-keyed cache for built workloads.

``Workload.build`` is a real cost at paper scale — the Kronecker
generators plus the functional executions (BFS levels, PageRank sweeps)
are Python loops that dwarf the simulation itself once ``scale``
approaches 1.0, and every figure driver rebuilds the same inputs for
each of its modes. Building is deterministic in (workload kind, scale,
seed, machine config), so the finished object — address space, input
arrays, kernels, and traces — can be pickled once and reloaded for every
subsequent run.

Entries live in the same ``.repro_cache/`` store as simulation results
(:mod:`repro.eval.result_cache`), under keys that mix in the workload's
class identity and a build-schema version, so result entries and build
entries can never collide and semantics changes invalidate cleanly.
"""

from __future__ import annotations

import pickle
import warnings
from typing import Optional

from repro.config import SystemConfig
from repro.eval.result_cache import ResultCache, fingerprint, \
    get_default_cache
from repro.mem.address import AddressSpace
from repro.workloads.base import Workload, make_workload, _REGISTRY

#: Bump when Workload.build semantics change (trace layout, allocation
#: order, functional execution) in a way that invalidates pickled builds.
BUILD_SCHEMA = 1


def build_key(name: str, scale: float, seed: int,
              config: SystemConfig) -> str:
    """Content hash identifying one deterministic workload build.

    The machine config participates because :class:`AddressSpace` layout
    (and therefore every trace's physical addresses) derives from it.
    """
    cls = _REGISTRY.get(name)
    return fingerprint({
        "kind": "workload-build",
        "schema": BUILD_SCHEMA,
        "workload": name,
        "class": f"{cls.__module__}.{cls.__qualname__}" if cls else name,
        "scale": scale,
        "seed": seed,
        "config": config,
    })


def build_workload_cached(name: str, scale: float, seed: int,
                          config: SystemConfig,
                          space: Optional[AddressSpace] = None,
                          cache: Optional[ResultCache] = None) -> Workload:
    """Return a built workload, loading it from the cache when possible.

    A custom ``space`` opts out of caching (the key only covers the
    config-derived default layout). An unpicklable build, or one larger
    than ``$REPRO_CACHE_MAX_MB``, degrades to a plain miss with a
    one-line warning rather than failing the run.
    """
    if space is not None:
        wl = make_workload(name, scale=scale, seed=seed)
        wl.build(space)
        return wl
    cache = cache if cache is not None else get_default_cache()
    key = build_key(name, scale, seed, config)
    cached = cache.lookup(key)
    if isinstance(cached, Workload):
        return cached
    wl = make_workload(name, scale=scale, seed=seed)
    wl.build(AddressSpace(config))
    try:
        stored = cache.store(key, wl)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        warnings.warn(f"build cache: {name} (scale={scale:g}) is "
                      f"unpicklable, not cached: {exc}", stacklevel=2)
    else:
        if not stored:
            warnings.warn(f"build cache: {name} (scale={scale:g}) exceeds "
                          f"$REPRO_CACHE_MAX_MB, not cached", stacklevel=2)
    return wl
