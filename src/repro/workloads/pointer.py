"""Pointer-chasing workloads: bin_tree and hash_join (Table VI: Ptr. Reduce).

Both follow the Fig 2(d) shape: a pointer chain is chased across LLC banks
with a small comparison at each node, and only the reduced result (found
flag / aggregate) returns to the core.

Linked structures are laid out as real node pools with pointer fields, so
the chase traces are genuine data-dependent address chains.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.compiler.ir import (
    AffineAccess,
    BinOp,
    IndirectAccess,
    Kernel,
    Load,
    Loop,
    PointerChaseAccess,
    Reduce,
)
from repro.isa.pattern import ComputeKind
from repro.offload.modes import AddrPattern
from repro.workloads.base import (
    Phase,
    StreamTraceData,
    Workload,
    register_workload,
)

U64 = 8
TREE_NODE_BYTES = 32   # key, left, right, value
HASH_NODE_BYTES = 16   # key, next (payload packed in key's high bits)


@register_workload
class BinTree(Workload):
    """Random binary-search-tree lookups; the chase compares the query key
    at each node and picks the left/right child."""

    name = "bin_tree"
    addr_label = "Ptr."
    cmp_label = "Reduce"
    paper_params = "128k nodes, 8B key"
    requirement = (AddrPattern.POINTER_CHASE, ComputeKind.REDUCE)

    PAPER_NODES = 131_072
    PAPER_LOOKUPS = 524_288

    def _build_phases(self) -> List[Phase]:
        n_nodes = self.scaled(self.PAPER_NODES, minimum=256)
        n_lookups = self.scaled(self.PAPER_LOOKUPS, minimum=512)
        rng = np.random.default_rng(self.seed)

        keys = rng.permutation(n_nodes * 4)[:n_nodes].astype(np.int64)
        left = np.full(n_nodes, -1, dtype=np.int64)
        right = np.full(n_nodes, -1, dtype=np.int64)
        root = 0
        for i in range(1, n_nodes):
            node = root
            while True:
                if keys[i] < keys[node]:
                    if left[node] == -1:
                        left[node] = i
                        break
                    node = left[node]
                else:
                    if right[node] == -1:
                        right[node] = i
                        break
                    node = right[node]
        self.keys, self.left, self.right, self.root = keys, left, right, root

        # Half the lookups hit, half miss.
        hits = rng.choice(keys, size=n_lookups // 2)
        misses = rng.integers(n_nodes * 4, n_nodes * 8,
                              size=n_lookups - len(hits))
        queries = np.concatenate([hits, misses])
        rng.shuffle(queries)
        self.queries = queries

        tree_r = self.space.allocate("tree", n_nodes, TREE_NODE_BYTES)
        queries_r = self.space.allocate("queries", n_lookups, U64)

        chain: List[int] = []
        chain_lengths: List[int] = []
        found = np.zeros(n_lookups, dtype=bool)
        for qi, q in enumerate(queries.tolist()):
            node = self.root
            steps = 0
            while node != -1:
                chain.append(node)
                steps += 1
                if q == keys[node]:
                    found[qi] = True
                    break
                node = int(left[node] if q < keys[node] else right[node])
            chain_lengths.append(steps)
        self.found = found
        self.n_lookups = n_lookups
        avg_depth = max(len(chain) / n_lookups, 1.0)

        traces = {
            "queries_ld": StreamTraceData(
                "queries_ld", queries_r.element_vaddr(np.arange(n_lookups)),
                is_write=False, element_bytes=U64),
            "tree_chase": StreamTraceData(
                "tree_chase", tree_r.element_vaddr(np.array(chain)),
                is_write=False, element_bytes=TREE_NODE_BYTES,
                affine_fraction=0.0,
                chain_lengths=np.array(chain_lengths, dtype=np.int64)),
        }
        kernel = Kernel(
            name="bin_tree",
            loops=(Loop("i", n_lookups),
                   Loop("j", None, expected_trip=avg_depth)),
            body=(
                Load("q", AffineAccess("queries", (("i", 1),)), bytes=U64,
                     level=0),
                Load("nd", PointerChaseAccess("tree", next_offset=8,
                                              start_var="$root"),
                     bytes=TREE_NODE_BYTES),
                BinOp("m", "key_eq", ("nd", "q"), ops=1, latency=1, bytes=1),
                Reduce("found", "or", "m", associative=True, bytes=1),
            ),
            element_bytes={"queries": U64, "tree": TREE_NODE_BYTES},
        )
        return [Phase(kernel=kernel, traces=traces,
                      serial_chain_latency_hint=1.0)]

    def verify(self) -> bool:
        key_set = set(self.keys.tolist())
        check = min(self.n_lookups, 4000)
        for qi in range(check):
            want = int(self.queries[qi]) in key_set
            if want != bool(self.found[qi]):
                return False
        return True


@register_workload
class HashJoin(Workload):
    """Hash-join probe: hash the probe key, walk the bucket chain, count
    matches. Paper: 512k uniform lookups, 256k x 512k join, hit rate 1/8."""

    name = "hash_join"
    addr_label = "Ptr."
    cmp_label = "Reduce"
    paper_params = "512k lookups, 256k x 512k, hit 1/8"
    requirement = (AddrPattern.POINTER_CHASE, ComputeKind.REDUCE)

    PAPER_BUILD = 524_288
    PAPER_BUCKETS = 262_144
    PAPER_PROBES = 524_288
    HIT_RATE = 1.0 / 8.0

    def _build_phases(self) -> List[Phase]:
        n_build = self.scaled(self.PAPER_BUILD, minimum=1024)
        n_buckets = self.scaled(self.PAPER_BUCKETS, minimum=512)
        n_probes = self.scaled(self.PAPER_PROBES, minimum=1024)
        rng = np.random.default_rng(self.seed)

        key_space = n_build * 8
        build_keys = rng.permutation(key_space)[:n_build].astype(np.int64)
        heads = np.full(n_buckets, -1, dtype=np.int64)
        nexts = np.full(n_build, -1, dtype=np.int64)
        for i, k in enumerate(build_keys.tolist()):
            b = hash((k * 2654435761) & 0xFFFFFFFF) % n_buckets
            nexts[i] = heads[b]
            heads[b] = i
        self.build_keys = build_keys

        n_hits = int(n_probes * self.HIT_RATE)
        probe_hits = rng.choice(build_keys, size=n_hits)
        probe_misses = rng.integers(key_space, key_space * 2,
                                    size=n_probes - n_hits)
        probes = np.concatenate([probe_hits, probe_misses])
        rng.shuffle(probes)
        self.probes = probes

        heads_r = self.space.allocate("heads", n_buckets, U64)
        nodes_r = self.space.allocate("chain", n_build, HASH_NODE_BYTES)
        probes_r = self.space.allocate("probes", n_probes, U64)

        chain: List[int] = []
        chain_lengths: List[int] = []
        head_targets: List[int] = []
        matches = np.zeros(n_probes, dtype=np.int64)
        for pi, q in enumerate(probes.tolist()):
            b = hash((q * 2654435761) & 0xFFFFFFFF) % n_buckets
            head_targets.append(b)
            node = int(heads[b])
            steps = 0
            while node != -1:
                chain.append(node)
                steps += 1
                if build_keys[node] == q:
                    matches[pi] += 1
                node = int(nexts[node])
            chain_lengths.append(steps)
        self.matches = matches
        self.n_probes = n_probes
        avg_chain = max(len(chain) / n_probes, 0.25)

        traces = {
            "probes_ld": StreamTraceData(
                "probes_ld", probes_r.element_vaddr(np.arange(n_probes)),
                is_write=False, element_bytes=U64),
            "heads_ind_ld": StreamTraceData(
                "heads_ind_ld",
                heads_r.element_vaddr(np.array(head_targets)),
                is_write=False, element_bytes=U64, affine_fraction=0.0),
            "chain_chase": StreamTraceData(
                "chain_chase",
                nodes_r.element_vaddr(np.array(chain) if chain
                                      else np.zeros(1, dtype=np.int64)),
                is_write=False, element_bytes=HASH_NODE_BYTES,
                affine_fraction=0.0,
                chain_lengths=np.array(chain_lengths, dtype=np.int64)),
        }
        kernel = Kernel(
            name="hash_join",
            loops=(Loop("i", n_probes),
                   Loop("j", None, expected_trip=avg_chain)),
            body=(
                Load("q", AffineAccess("probes", (("i", 1),)), bytes=U64,
                     level=0),
                BinOp("b", "hash", ("q",), ops=2, latency=3, bytes=U64,
                      level=0),
                Load("h", IndirectAccess("heads", "b"), bytes=U64, level=0),
                Load("nd", PointerChaseAccess("chain", next_offset=8,
                                              start_var="h"),
                     bytes=HASH_NODE_BYTES),
                BinOp("m", "key_match", ("nd", "q"), ops=2, latency=2,
                      bytes=U64),
                Reduce("agg", "add", "m", associative=True, bytes=U64),
            ),
            element_bytes={"probes": U64, "heads": U64,
                           "chain": HASH_NODE_BYTES},
        )
        return [Phase(kernel=kernel, traces=traces,
                      serial_chain_latency_hint=1.0)]

    def verify(self) -> bool:
        key_set = {}
        for k in self.build_keys.tolist():
            key_set[k] = key_set.get(k, 0) + 1
        check = min(self.n_probes, 4000)
        for pi in range(check):
            want = key_set.get(int(self.probes[pi]), 0)
            if want != int(self.matches[pi]):
                return False
        return True
