"""Didactic micro-workloads (§II-B's running examples).

These are the paper's illustrative kernels rather than Table VI entries:

* ``memset`` — Fig 2's store example: ``A[i] = 0`` performed in place as
  the stream migrates, eliminating write-allocate and writeback traffic.
* ``vecsum`` — Fig 2(a)/4(a): an affine reduction; the stream migrates
  bank to bank accumulating, and only the final value returns.
* ``saxpy`` — Fig 2(b): the canonical multi-operand store
  ``C[i] = a*A[i] + B[i]`` with operand forwarding to the store's bank.
* ``condsum`` — Fig 3(a): the conditional sum, demonstrating conditional
  stream usage through predication.

They register in the workload registry (usable with ``run_workload``) but
are not part of the Table VI set, so the paper-figure benchmarks ignore
them.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.compiler.ir import (
    AffineAccess,
    BinOp,
    Kernel,
    Load,
    Loop,
    Reduce,
    Store,
)
from repro.isa.pattern import ComputeKind
from repro.offload.modes import AddrPattern
from repro.workloads.base import (
    Phase,
    StreamTraceData,
    Workload,
    register_workload,
)

F64 = 8


@register_workload
class Memset(Workload):
    """A[i] = 0 — the pure store stream."""

    name = "memset"
    addr_label = "Aff."
    cmp_label = "Store"
    paper_params = "illustrative (§II-B)"
    requirement = (AddrPattern.AFFINE, ComputeKind.STORE)

    PAPER_N = 8_000_000

    def _build_phases(self) -> List[Phase]:
        n = self.scaled(self.PAPER_N, minimum=4096)
        region = self.space.allocate("A", n, F64)
        self.n = n
        self.result = np.zeros(n)
        traces = {
            "A_st": StreamTraceData(
                "A_st", region.element_vaddr(np.arange(n)),
                is_write=True, element_bytes=F64),
        }
        kernel = Kernel(
            name="memset",
            loops=(Loop("i", n),),
            body=(Store(AffineAccess("A", (("i", 1),)), "$zero",
                        bytes=F64),),
            element_bytes={"A": F64},
            sync_free=True,
            vector_lanes=8,
        )
        return [Phase(kernel=kernel, traces=traces)]

    def verify(self) -> bool:
        return bool(np.all(self.result == 0.0))


@register_workload
class VecSum(Workload):
    """acc = sum(A[i]) — the affine reduction of Fig 2(a)/4(a)."""

    name = "vecsum"
    addr_label = "Aff."
    cmp_label = "Reduce"
    paper_params = "illustrative (§II-B)"
    requirement = (AddrPattern.AFFINE, ComputeKind.REDUCE)

    PAPER_N = 8_000_000

    def _build_phases(self) -> List[Phase]:
        n = self.scaled(self.PAPER_N, minimum=4096)
        rng = np.random.default_rng(self.seed)
        self.values = rng.random(n)
        self.total = float(self.values.sum())
        region = self.space.allocate("A", n, F64)
        self.n = n
        traces = {
            "A_ld": StreamTraceData(
                "A_ld", region.element_vaddr(np.arange(n)),
                is_write=False, element_bytes=F64),
        }
        kernel = Kernel(
            name="vecsum",
            loops=(Loop("i", n),),
            body=(
                Load("a", AffineAccess("A", (("i", 1),)), bytes=F64),
                Reduce("acc", "add", "a", bytes=F64),
            ),
            element_bytes={"A": F64},
            sync_free=True,
            vector_lanes=8,
        )
        return [Phase(kernel=kernel, traces=traces)]

    def verify(self) -> bool:
        # Kahan-free scalar sum as the independent reference.
        total = 0.0
        for v in self.values[: min(self.n, 50000)].tolist():
            total += v
        return bool(np.isclose(total,
                               float(self.values[: min(self.n, 50000)]
                                     .sum()), rtol=1e-9))


@register_workload
class CondSum(Workload):
    """sum += A[i] when cond[i] — Fig 3(a)'s conditional-sum example.

    Demonstrates conditional stream usage: the A stream is configured for
    the whole loop and explicitly stepped, but its data is consumed only
    when the condition stream says so (the select folds into the
    reduction's near-stream function)."""

    name = "condsum"
    addr_label = "MO."
    cmp_label = "Reduce"
    paper_params = "illustrative (Fig 3a)"
    requirement = (AddrPattern.MULTI_OP, ComputeKind.REDUCE)

    PAPER_N = 8_000_000

    def _build_phases(self) -> List[Phase]:
        n = self.scaled(self.PAPER_N, minimum=4096)
        rng = np.random.default_rng(self.seed)
        self.values = rng.random(n)
        self.cond = rng.random(n) < 0.5
        self.total = float(self.values[self.cond].sum())
        a_r = self.space.allocate("A", n, F64)
        c_r = self.space.allocate("cond", n, 1)
        self.n = n
        idx = np.arange(n)
        traces = {
            "A_ld": StreamTraceData("A_ld", a_r.element_vaddr(idx),
                                    is_write=False, element_bytes=F64),
            "cond_ld": StreamTraceData("cond_ld", c_r.element_vaddr(idx),
                                       is_write=False, element_bytes=1),
        }
        kernel = Kernel(
            name="condsum",
            loops=(Loop("i", n),),
            body=(
                Load("c", AffineAccess("cond", (("i", 1),)), bytes=1),
                Load("a", AffineAccess("A", (("i", 1),)), bytes=F64),
                BinOp("m", "select", ("c", "a"), ops=1, latency=1,
                      bytes=F64, predicated=True),
                Reduce("acc", "add", "m", bytes=F64),
            ),
            element_bytes={"cond": 1, "A": F64},
            sync_free=True,
            vector_lanes=8,
        )
        return [Phase(kernel=kernel, traces=traces)]

    def verify(self) -> bool:
        check = min(self.n, 50000)
        total = 0.0
        for v, c in zip(self.values[:check].tolist(),
                        self.cond[:check].tolist()):
            if c:
                total += v
        return bool(np.isclose(total,
                               float(self.values[:check][
                                   self.cond[:check]].sum()), rtol=1e-9))


@register_workload
class Saxpy(Workload):
    """C[i] = a * A[i] + B[i] — the canonical multi-operand store."""

    name = "saxpy"
    addr_label = "MO."
    cmp_label = "Store"
    paper_params = "illustrative (Fig 2b)"
    requirement = (AddrPattern.MULTI_OP, ComputeKind.STORE)

    PAPER_N = 8_000_000
    A = 2.5

    def _build_phases(self) -> List[Phase]:
        n = self.scaled(self.PAPER_N, minimum=4096)
        rng = np.random.default_rng(self.seed)
        self.x = rng.random(n)
        self.y = rng.random(n)
        self.result = self.A * self.x + self.y
        ax = self.space.allocate("A", n, F64)
        bx = self.space.allocate("B", n, F64)
        cx = self.space.allocate("C", n, F64)
        self.n = n
        idx = np.arange(n)
        traces = {
            "A_ld": StreamTraceData("A_ld", ax.element_vaddr(idx),
                                    is_write=False, element_bytes=F64),
            "B_ld": StreamTraceData("B_ld", bx.element_vaddr(idx),
                                    is_write=False, element_bytes=F64),
            "C_st": StreamTraceData("C_st", cx.element_vaddr(idx),
                                    is_write=True, element_bytes=F64),
        }
        kernel = Kernel(
            name="saxpy",
            loops=(Loop("i", n),),
            body=(
                Load("a", AffineAccess("A", (("i", 1),)), bytes=F64),
                Load("b", AffineAccess("B", (("i", 1),)), bytes=F64),
                BinOp("c", "fma", ("a", "b"), ops=1, latency=4, simd=True,
                      bytes=F64),
                Store(AffineAccess("C", (("i", 1),)), "c", bytes=F64),
            ),
            element_bytes={"A": F64, "B": F64, "C": F64},
            sync_free=True,
            vector_lanes=8,
        )
        return [Phase(kernel=kernel, traces=traces)]

    def verify(self) -> bool:
        check = min(self.n, 50000)
        for i in range(0, check, 997):
            if not np.isclose(self.A * self.x[i] + self.y[i],
                              self.result[i], rtol=1e-12):
                return False
        return True
