"""Data-mining workloads: histogram, scluster (streamcluster), svm.

* ``histogram`` — affine load with a near-load key extraction (the Fig 2
  "load" pattern: the stream returns an 8-bit key instead of the 32-bit
  value); the 256-entry bin array stays core-private (L1-resident).
* ``scluster`` — indirect load of 64 B points with a near-load Euclidean
  distance: the stream returns a 4 B scalar instead of the 64 B point
  (the §VII-B scluster example).
* ``svm`` — indirect load of 64 B support vectors with a near-load dot
  product against a loop-invariant weight vector.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.compiler.ir import (
    AffineAccess,
    BinOp,
    IndirectAccess,
    Kernel,
    Load,
    Loop,
    Store,
)
from repro.isa.pattern import ComputeKind
from repro.offload.modes import AddrPattern
from repro.workloads.base import (
    Phase,
    StreamTraceData,
    Workload,
    register_workload,
)

U32 = 4
F32 = 4
POINT_BYTES = 64
DIMS = 16  # 16 x fp32 = 64 B points


@register_workload
class Histogram(Workload):
    """Key-extraction histogram over 32-bit values (Table VI: Aff. Load)."""

    name = "histogram"
    addr_label = "Aff."
    cmp_label = "Load"
    paper_params = "12M 32b value, 8b key"
    requirement = (AddrPattern.AFFINE, ComputeKind.LOAD)

    PAPER_VALUES = 12_000_000
    BINS = 256

    def _build_phases(self) -> List[Phase]:
        n = self.scaled(self.PAPER_VALUES, minimum=4096)
        rng = np.random.default_rng(self.seed)
        self.values = rng.integers(0, 2**32, size=n, dtype=np.uint32)
        vals_r = self.space.allocate("vals", n, U32)
        self.space.allocate("hist", self.BINS, U32)

        keys = (self.values >> np.uint32(24)).astype(np.uint8)
        self.hist = np.bincount(keys, minlength=self.BINS).astype(np.int64)
        self.n = n

        traces = {
            "vals_ld": StreamTraceData(
                "vals_ld", vals_r.element_vaddr(np.arange(n)),
                is_write=False, element_bytes=U32),
        }
        kernel = Kernel(
            name="histogram",
            loops=(Loop("i", n),),
            body=(
                Load("v", AffineAccess("vals", (("i", 1),)), bytes=U32),
                # Key extraction: shift + mask, 1-byte result -> near-load
                # (vectorized: AVX processes 16 values per instruction).
                BinOp("key", "extract8", ("v",), ops=2, latency=2, bytes=1,
                      simd=True),
                # Core-private bin update (256 entries, always L1-resident).
                Load("h", IndirectAccess("hist", "key"), bytes=U32,
                     no_stream=True),
                BinOp("h1", "inc", ("h",), ops=1, latency=1, bytes=U32),
                Store(IndirectAccess("hist", "key"), "h1", bytes=U32,
                      no_stream=True),
            ),
            element_bytes={"vals": U32, "hist": U32},
            vector_lanes=16,
        )
        return [Phase(kernel=kernel, traces=traces)]

    def verify(self) -> bool:
        ref = np.zeros(self.BINS, dtype=np.int64)
        for v in self.values[: min(self.n, 20000)].tolist():
            ref[(v >> 24) & 0xFF] += 1
        got = np.bincount((self.values[: min(self.n, 20000)]
                           >> np.uint32(24)).astype(np.uint8),
                          minlength=self.BINS)
        return bool(np.array_equal(ref, got)) and int(self.hist.sum()) == self.n


class _GatherCompute(Workload):
    """Shared shape of scluster/svm: indirect 64 B gathers + vector math."""

    PAPER_POINTS = 0
    ITERS = 1
    FN_OPS = 8
    FN_LATENCY = 12
    OP_NAME = "dist"

    def _compute(self, points: np.ndarray, anchor: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _build_phases(self) -> List[Phase]:
        n = self.scaled(self.PAPER_POINTS, minimum=1024)
        rng = np.random.default_rng(self.seed)
        self.points = rng.random((n, DIMS)).astype(np.float32)
        self.anchor = rng.random(DIMS).astype(np.float32)
        self.order = rng.permutation(n).astype(np.int64)

        order_r = self.space.allocate("order", n, U32)
        pts_r = self.space.allocate("points", n, POINT_BYTES)
        out_r = self.space.allocate("out_acc", n, F32)

        self.result = self._compute(self.points[self.order], self.anchor)
        self.n = n

        idx_vaddrs = np.tile(order_r.element_vaddr(np.arange(n)), self.ITERS)
        gather_vaddrs = np.tile(pts_r.element_vaddr(self.order), self.ITERS)
        traces = {
            "order_ld": StreamTraceData("order_ld", idx_vaddrs,
                                        is_write=False, element_bytes=U32),
            "points_ind_ld": StreamTraceData(
                "points_ind_ld", gather_vaddrs, is_write=False,
                element_bytes=POINT_BYTES, affine_fraction=0.0),
        }
        kernel = Kernel(
            name=self.name,
            loops=(Loop("it", self.ITERS), Loop("i", n)),
            body=(
                Load("idx", AffineAccess("order", (("i", 1),)), bytes=U32),
                Load("pt", IndirectAccess("points", "idx"),
                     bytes=POINT_BYTES),
                # Vector kernel against a loop-invariant anchor; the 4 B
                # scalar result makes this a near-load closure (the stream
                # returns the scalar, not the 64 B point).
                BinOp("d", self.OP_NAME, ("pt", "$anchor"), ops=self.FN_OPS,
                      latency=self.FN_LATENCY, simd=True, bytes=F32),
                # Core-side consumption: compare against the running best
                # and conditionally update the assignment (rare store).
                BinOp("g", "cmp_best", ("d",), ops=2, latency=2, bytes=F32),
                Store(AffineAccess("out_acc", (("i", 1),)), "g", bytes=F32,
                      predicated=True, no_stream=True),
            ),
            element_bytes={"order": U32, "points": POINT_BYTES,
                           "out_acc": F32},
            vector_lanes=4,
        )
        return [Phase(kernel=kernel, traces=traces)]

    def verify(self) -> bool:
        check = min(self.n, 2000)
        for i in range(check):
            p = self.points[self.order[i]]
            want = self._reference_one(p, self.anchor)
            if not np.isclose(want, self.result[i], rtol=1e-4):
                return False
        return True

    def _reference_one(self, p: np.ndarray, anchor: np.ndarray) -> float:
        raise NotImplementedError


@register_workload
class SCluster(_GatherCompute):
    """streamcluster's hot loop: Euclidean distance to the current center."""

    name = "scluster"
    addr_label = "Ind."
    cmp_label = "Load"
    paper_params = "768k x 64B, 5 iters"
    requirement = (AddrPattern.INDIRECT, ComputeKind.LOAD)

    PAPER_POINTS = 768_000
    ITERS = 5
    OP_NAME = "euclid"

    def _compute(self, points: np.ndarray, anchor: np.ndarray) -> np.ndarray:
        diff = points - anchor[None, :]
        return (diff * diff).sum(axis=1).astype(np.float32)

    def _reference_one(self, p: np.ndarray, anchor: np.ndarray) -> float:
        total = 0.0
        for a, b in zip(p.tolist(), anchor.tolist()):
            total += (a - b) * (a - b)
        return total


@register_workload
class Svm(_GatherCompute):
    """SVM kernel evaluation: dot products with gathered support vectors."""

    name = "svm"
    addr_label = "Ind."
    cmp_label = "Load"
    paper_params = "384k x 64B, 2 iters"
    requirement = (AddrPattern.INDIRECT, ComputeKind.LOAD)

    PAPER_POINTS = 384_000
    ITERS = 2
    FN_OPS = 6
    FN_LATENCY = 10
    OP_NAME = "dot"

    def _compute(self, points: np.ndarray, anchor: np.ndarray) -> np.ndarray:
        return (points * anchor[None, :]).sum(axis=1).astype(np.float32)

    def _reference_one(self, p: np.ndarray, anchor: np.ndarray) -> float:
        total = 0.0
        for a, b in zip(p.tolist(), anchor.tolist()):
            total += a * b
        return total
