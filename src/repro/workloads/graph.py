"""GAP graph-suite workloads on Kronecker graphs.

The graph is generated with the paper's R-MAT parameters
(A/B/C = 0.57/0.19/0.19, weights in [1, 255]) and stored in CSR form, with
weighted edges packed as (dest, weight) pairs in a single 8-byte element —
the layout that makes sssp's atomic operand derive from the *base* edge
stream (the eligible ``C[A[i]] += A[i]`` shape of §II-B).

* ``bfs_push`` / ``pr_push`` / ``sssp`` — indirect atomics (CAS / add / min);
  the functional execution records, per atomic, whether it actually changed
  the value — the signal behind the MRSW lock results (Fig 16).
* ``bfs_pull`` / ``pr_pull`` — indirect reductions over in-edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.compiler.ir import (
    AffineAccess,
    Atomic,
    BinOp,
    IndirectAccess,
    Kernel,
    Load,
    Loop,
    Reduce,
    Store,
)
from repro.isa.pattern import ComputeKind
from repro.offload.modes import AddrPattern
from repro.workloads.base import (
    Phase,
    StreamTraceData,
    Workload,
    register_workload,
)

U32 = 4
F32 = 4
EDGE_BYTES = 8   # packed (dest u32, weight u32)


@dataclass
class CsrGraph:
    """Compressed-sparse-row graph, out- and in-direction."""

    num_nodes: int
    out_offsets: np.ndarray
    out_col: np.ndarray
    out_weight: np.ndarray
    in_offsets: np.ndarray
    in_col: np.ndarray

    @property
    def num_edges(self) -> int:
        return len(self.out_col)

    def out_degree(self, u: int) -> int:
        return int(self.out_offsets[u + 1] - self.out_offsets[u])

    def out_edges(self, u: int) -> Tuple[np.ndarray, np.ndarray]:
        lo, hi = int(self.out_offsets[u]), int(self.out_offsets[u + 1])
        return self.out_col[lo:hi], self.out_weight[lo:hi]

    def in_edges(self, v: int) -> np.ndarray:
        lo, hi = int(self.in_offsets[v]), int(self.in_offsets[v + 1])
        return self.in_col[lo:hi]


def kronecker_graph(node_log2: int, num_edges: int, a: float = 0.57,
                    b: float = 0.19, c: float = 0.19,
                    seed: int = 42) -> CsrGraph:
    """R-MAT generator with the paper's A/B/C quadrant probabilities."""
    n = 1 << node_log2
    d = 1.0 - a - b - c
    rng = np.random.default_rng(seed)
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for _ in range(node_log2):
        src <<= 1
        dst <<= 1
        r_src = rng.random(num_edges)
        src_bit = r_src >= (a + b)
        # P(dst_bit = 1 | src_bit): b/(a+b) in the top half, d/(c+d) below.
        thresh = np.where(src_bit, c / (c + d), a / (a + b))
        dst_bit = rng.random(num_edges) >= thresh
        src |= src_bit.astype(np.int64)
        dst |= dst_bit.astype(np.int64)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    weight = rng.integers(1, 256, size=len(src)).astype(np.int64)

    order = np.argsort(src, kind="stable")
    src, dst, weight = src[order], dst[order], weight[order]
    out_offsets = np.zeros(n + 1, dtype=np.int64)
    np.add.at(out_offsets, src + 1, 1)
    out_offsets = np.cumsum(out_offsets)

    order_in = np.argsort(dst, kind="stable")
    in_src = src[order_in]
    in_offsets = np.zeros(n + 1, dtype=np.int64)
    np.add.at(in_offsets, dst[order_in] + 1, 1)
    in_offsets = np.cumsum(in_offsets)

    return CsrGraph(num_nodes=n, out_offsets=out_offsets, out_col=dst,
                    out_weight=weight, in_offsets=in_offsets, in_col=in_src)


class _GraphWorkload(Workload):
    """Shared graph construction (Table VI: 256k nodes, 3.6M edges)."""

    PAPER_NODE_LOG2 = 18
    PAPER_EDGES = 3_600_000

    def _make_graph(self) -> CsrGraph:
        # Nodes shrink by scale (a power of two below the paper's 2^18).
        shrink_log2 = max(int(round(np.log2(1.0 / self.scale) / 2)), 0)
        node_log2 = max(self.PAPER_NODE_LOG2 - 2 * shrink_log2, 8)
        edges = self.scaled(self.PAPER_EDGES, minimum=4096)
        self.graph = kronecker_graph(node_log2, edges, seed=self.seed)
        return self.graph

    def _alloc_csr(self, prefix: str = "") -> Dict[str, "Region"]:
        g = self.graph
        return {
            "offs": self.space.allocate(f"{prefix}offs", g.num_nodes + 1, U32),
            "col": self.space.allocate(f"{prefix}col", max(g.num_edges, 1),
                                       U32),
        }


@register_workload
class BfsPush(_GraphWorkload):
    """Top-down BFS: CAS on parent[] per traversed edge."""

    name = "bfs_push"
    addr_label = "Ind."
    cmp_label = "Atomic"
    paper_params = "Kronecker 256k nodes / 3.6M edges"
    requirement = (AddrPattern.INDIRECT, ComputeKind.RMW)

    def _build_phases(self) -> List[Phase]:
        g = self._make_graph()
        regions = self._alloc_csr()
        frontier_r = self.space.allocate("frontier", g.num_nodes, U32)
        parent_r = self.space.allocate("parent", g.num_nodes, U32)

        # Functional BFS recording every atomic, one level at a time.
        # Within a level the scalar semantics are: edges are visited in
        # (frontier order, edge order); the FIRST edge to reach an
        # unvisited node claims it (CAS succeeds), every later edge to it
        # fails — which level-at-a-time array ops reproduce exactly.
        source = int(np.argmax(np.diff(g.out_offsets)))  # highest out-degree
        parent = np.full(g.num_nodes, -1, dtype=np.int64)
        parent[source] = source
        frontier = np.array([source], dtype=np.int64)
        n_frontier = 0                    # nodes popped off the frontier
        edge_chunks: List[np.ndarray] = []     # edge indices traversed
        target_chunks: List[np.ndarray] = []   # parent[] indices
        modify_chunks: List[np.ndarray] = []
        levels = 0
        while len(frontier):
            levels += 1
            n_frontier += len(frontier)
            starts = g.out_offsets[frontier]
            deg = g.out_offsets[frontier + 1] - starts
            total = int(deg.sum())
            if total == 0:
                break
            within = (np.arange(total, dtype=np.int64)
                      - np.repeat(np.cumsum(deg) - deg, deg))
            e = np.repeat(starts, deg) + within
            v = g.out_col[e]
            u_rep = np.repeat(frontier, deg)
            edge_chunks.append(e)
            target_chunks.append(v)
            # First edge-order occurrence of each still-unvisited target
            # succeeds; all other edges this level fail their CAS.
            first = np.zeros(total, dtype=bool)
            first[np.unique(v, return_index=True)[1]] = True
            claimed = first & (parent[v] == -1)
            modify_chunks.append(claimed)
            parent[v[claimed]] = u_rep[claimed]
            frontier = v[claimed]         # discovery (edge) order
        self.parent = parent
        self.source = source
        self.levels = levels

        frontier_idx = np.arange(n_frontier, dtype=np.int64)
        col_edges = (np.concatenate(edge_chunks) if edge_chunks
                     else np.empty(0, dtype=np.int64))
        atomic_targets = (np.concatenate(target_chunks) if target_chunks
                          else np.empty(0, dtype=np.int64))
        modifies = (np.concatenate(modify_chunks) if modify_chunks
                    else np.empty(0, dtype=bool))
        n_traversed = len(col_edges)
        avg_deg = max(n_traversed / max(n_frontier, 1), 1.0)

        traces = {
            "frontier_ld": StreamTraceData(
                "frontier_ld",
                frontier_r.element_vaddr(frontier_idx),
                is_write=False, element_bytes=U32),
            "offs_ind_ld": StreamTraceData(
                "offs_ind_ld",
                regions["offs"].element_vaddr(frontier_idx),
                is_write=False, element_bytes=U32, affine_fraction=0.0),
            "col_ld": StreamTraceData(
                "col_ld", regions["col"].element_vaddr(col_edges),
                is_write=False, element_bytes=U32, affine_fraction=0.7),
            "parent_ind_at": StreamTraceData(
                "parent_ind_at",
                parent_r.element_vaddr(atomic_targets),
                is_write=True, element_bytes=U32, affine_fraction=0.0,
                modifies=modifies),
        }
        measured_modify = float(np.mean(modifies)) if len(modifies) else 0.0
        kernel = Kernel(
            name="bfs_push",
            loops=(Loop("i", n_frontier),
                   Loop("j", None, expected_trip=avg_deg)),
            body=(
                Load("u", AffineAccess("frontier", (("i", 1),)), bytes=U32,
                     level=0),
                Load("off", IndirectAccess("offs", "u"), bytes=U32, level=0),
                Load("v", AffineAccess("col", (("j", 1),), base_var="off"),
                     bytes=U32),
                Atomic(IndirectAccess("parent", "v"), "cas", "u", bytes=U32,
                       modifies_hint=measured_modify),
            ),
            element_bytes={"frontier": U32, "offs": U32, "col": U32,
                           "parent": U32},
        )
        return [Phase(kernel=kernel, traces=traces, invocations=1,
                      barriers=levels)]

    def verify(self) -> bool:
        """Every reached node's parent edge must exist and BFS distances
        must be consistent (parent one level closer to the source)."""
        g = self.graph
        # Recompute reachability with an independent numpy BFS.
        dist = np.full(g.num_nodes, -1, dtype=np.int64)
        dist[self.source] = 0
        frontier = np.array([self.source])
        depth = 0
        while len(frontier):
            depth += 1
            nxt = []
            for u in frontier.tolist():
                cols, _ = g.out_edges(u)
                for v in cols.tolist():
                    if dist[v] == -1:
                        dist[v] = depth
                        nxt.append(v)
            frontier = np.array(nxt, dtype=np.int64)
        reached_ref = dist >= 0
        reached_got = self.parent >= 0
        if not np.array_equal(reached_ref, reached_got):
            return False
        for v in np.nonzero(reached_got)[0].tolist():
            if v == self.source:
                continue
            u = int(self.parent[v])
            cols, _ = g.out_edges(u)
            if v not in cols.tolist():
                return False
        return True


@register_workload
class PrPush(_GraphWorkload):
    """Push-style PageRank: atomic adds of contributions, then an affine
    score-update phase (the kernel §VII-C notes is not scalar-PE eligible)."""

    name = "pr_push"
    addr_label = "Ind."
    cmp_label = "Atomic"
    paper_params = "Kronecker graph, damping 0.85"
    requirement = (AddrPattern.INDIRECT, ComputeKind.RMW)

    ITERS = 2
    DAMPING = 0.85

    def _build_phases(self) -> List[Phase]:
        g = self._make_graph()
        regions = self._alloc_csr()
        n = g.num_nodes
        scores_r = self.space.allocate("scores", n, F32)
        degs_r = self.space.allocate("degs", n, U32)
        sums_r = self.space.allocate("sums", n, F32)

        deg = np.maximum(np.diff(g.out_offsets), 1).astype(np.float64)
        scores = np.full(n, 1.0 / n)
        for _ in range(self.ITERS):
            contrib = scores / deg
            sums = np.zeros(n)
            np.add.at(sums, g.out_col, contrib[np.searchsorted(
                g.out_offsets[1:], np.arange(g.num_edges), side="right")])
            scores = (1.0 - self.DAMPING) / n + self.DAMPING * sums
        self.scores = scores
        avg_deg = max(g.num_edges / n, 1.0)

        edge_src = np.searchsorted(g.out_offsets[1:], np.arange(g.num_edges),
                                   side="right")
        traces_a = {
            "scores_ld": StreamTraceData(
                "scores_ld", scores_r.element_vaddr(np.arange(n)),
                is_write=False, element_bytes=F32),
            "degs_ld": StreamTraceData(
                "degs_ld", degs_r.element_vaddr(np.arange(n)),
                is_write=False, element_bytes=U32),
            "offs_ld": StreamTraceData(
                "offs_ld", regions["offs"].element_vaddr(np.arange(n)),
                is_write=False, element_bytes=U32),
            "col_ld": StreamTraceData(
                "col_ld",
                regions["col"].element_vaddr(np.arange(g.num_edges)),
                is_write=False, element_bytes=U32, affine_fraction=1.0),
            "sums_ind_at": StreamTraceData(
                "sums_ind_at", sums_r.element_vaddr(g.out_col),
                is_write=True, element_bytes=F32, affine_fraction=0.0,
                modifies=np.ones(g.num_edges, dtype=bool)),
        }
        kernel_a = Kernel(
            name="pr_push_edges",
            loops=(Loop("u", n), Loop("j", None, expected_trip=avg_deg)),
            body=(
                Load("sc", AffineAccess("scores", (("u", 1),)), bytes=F32,
                     level=0),
                Load("dg", AffineAccess("degs", (("u", 1),)), bytes=U32,
                     level=0),
                Load("off", AffineAccess("offs", (("u", 1),)), bytes=U32,
                     level=0),
                BinOp("contrib", "div", ("sc", "dg"), ops=1, latency=12,
                      bytes=F32, level=0),
                Load("v", AffineAccess("col", (("j", 1),), base_var="off"),
                     bytes=U32),
                Atomic(IndirectAccess("sums", "v"), "add", "contrib",
                       bytes=F32, modifies_hint=1.0),
            ),
            element_bytes={"scores": F32, "degs": U32, "offs": U32,
                           "col": U32, "sums": F32},
        )

        traces_b = {
            "sums2_rmw": StreamTraceData(
                "sums2_rmw", sums_r.element_vaddr(np.arange(n)),
                is_write=True, element_bytes=F32),
            "scores2_st": StreamTraceData(
                "scores2_st", scores_r.element_vaddr(np.arange(n)),
                is_write=True, element_bytes=F32),
        }
        kernel_b = Kernel(
            name="pr_push_update",
            loops=(Loop("u", n),),
            body=(
                Load("sm", AffineAccess("sums2", (("u", 1),)), bytes=F32),
                BinOp("ns", "fma", ("sm",), ops=2, latency=8, simd=True,
                      bytes=F32),
                Store(AffineAccess("scores2", (("u", 1),)), "ns", bytes=F32),
                Store(AffineAccess("sums2", (("u", 1),)), "$zero",
                      bytes=F32),
            ),
            element_bytes={"sums2": F32, "scores2": F32},
            vector_lanes=16,
        )
        return [
            Phase(kernel=kernel_a, traces=traces_a, invocations=self.ITERS),
            Phase(kernel=kernel_b, traces=traces_b, invocations=self.ITERS),
        ]

    def verify(self) -> bool:
        g = self.graph
        n = g.num_nodes
        deg = np.maximum(np.diff(g.out_offsets), 1).astype(np.float64)
        scores = np.full(n, 1.0 / n)
        for _ in range(self.ITERS):
            sums = np.zeros(n)
            for u in range(n):
                cols, _ = g.out_edges(u)
                for v in cols.tolist():  # scalar adds: duplicates accumulate
                    sums[v] += scores[u] / deg[u]
            scores = (1.0 - self.DAMPING) / n + self.DAMPING * sums
        return bool(np.allclose(scores, self.scores, rtol=1e-8))


@register_workload
class Sssp(_GraphWorkload):
    """Label-correcting SSSP: atomic min on dist[] with packed (dest,weight)
    edges — most relaxations fail, the MRSW lock's favorite case."""

    name = "sssp"
    addr_label = "Ind."
    cmp_label = "Atomic"
    paper_params = "weights [1, 255]"
    requirement = (AddrPattern.INDIRECT, ComputeKind.RMW)

    def _build_phases(self) -> List[Phase]:
        g = self._make_graph()
        n = g.num_nodes
        wl_r = self.space.allocate("wl", max(4 * n, 16), U32)
        offs_r = self.space.allocate("offs", n + 1, U32)
        edges_r = self.space.allocate("edges", max(g.num_edges, 1),
                                      EDGE_BYTES)
        dist_r = self.space.allocate("dist", n, U32)

        source = int(np.argmax(np.diff(g.out_offsets)))
        INF = np.int64(2**31)
        dist = np.full(n, INF, dtype=np.int64)
        dist[source] = 0
        from collections import deque
        queue = deque([source])
        in_queue = np.zeros(n, dtype=bool)
        in_queue[source] = True
        processed: List[int] = []
        edge_trace: List[int] = []
        target_trace: List[int] = []
        modifies: List[bool] = []
        rounds = 0
        while queue:
            u = queue.popleft()
            in_queue[u] = False
            processed.append(u)
            rounds += 1
            du = int(dist[u])
            lo, hi = int(g.out_offsets[u]), int(g.out_offsets[u + 1])
            for e in range(lo, hi):
                v = int(g.out_col[e])
                nd = du + int(g.out_weight[e])
                edge_trace.append(e)
                target_trace.append(v)
                if nd < dist[v]:
                    dist[v] = nd
                    modifies.append(True)
                    if not in_queue[v]:
                        queue.append(v)
                        in_queue[v] = True
                else:
                    modifies.append(False)
        self.dist = dist
        self.source = source

        n_proc = len(processed)
        avg_deg = max(len(edge_trace) / max(n_proc, 1), 1.0)
        measured_modify = float(np.mean(modifies)) if modifies else 0.0
        wl_idx = np.arange(n_proc) % wl_r.num_elements
        traces = {
            "wl_ld": StreamTraceData(
                "wl_ld", wl_r.element_vaddr(wl_idx), is_write=False,
                element_bytes=U32),
            # dist[u] reads target the same array the atomic min updates.
            "dist_u_ind_ld": StreamTraceData(
                "dist_u_ind_ld", dist_r.element_vaddr(np.array(processed)),
                is_write=False, element_bytes=U32, affine_fraction=0.0),
            "offs_ind_ld": StreamTraceData(
                "offs_ind_ld", offs_r.element_vaddr(np.array(processed)),
                is_write=False, element_bytes=U32, affine_fraction=0.0),
            "edges_ld": StreamTraceData(
                "edges_ld", edges_r.element_vaddr(np.array(edge_trace)),
                is_write=False, element_bytes=EDGE_BYTES,
                affine_fraction=0.7),
            "dist_ind_at": StreamTraceData(
                "dist_ind_at", dist_r.element_vaddr(np.array(target_trace)),
                is_write=True, element_bytes=U32, affine_fraction=0.0,
                modifies=np.array(modifies, dtype=bool)),
        }
        kernel = Kernel(
            name="sssp",
            loops=(Loop("i", n_proc),
                   Loop("j", None, expected_trip=avg_deg)),
            body=(
                Load("u", AffineAccess("wl", (("i", 1),)), bytes=U32,
                     level=0),
                Load("du", IndirectAccess("dist_u", "u"), bytes=U32,
                     level=0),
                Load("off", IndirectAccess("offs", "u"), bytes=U32, level=0),
                Load("ew", AffineAccess("edges", (("j", 1),),
                                        base_var="off"), bytes=EDGE_BYTES),
                BinOp("v", "hi32", ("ew",), ops=1, latency=1, bytes=U32),
                BinOp("nd", "add_lo32", ("ew", "du"), ops=2, latency=2,
                      bytes=U32),
                Atomic(IndirectAccess("dist", "v"), "min", "nd", bytes=U32,
                       modifies_hint=measured_modify),
            ),
            element_bytes={"wl": U32, "dist_u": U32, "offs": U32,
                           "edges": EDGE_BYTES, "dist": U32},
        )
        return [Phase(kernel=kernel, traces=traces, invocations=1,
                      barriers=max(rounds // max(n_proc // 8, 1), 1))]

    def verify(self) -> bool:
        """Compare against Dijkstra (heap-based) distances."""
        import heapq
        g = self.graph
        INF = 2**31
        dist = [INF] * g.num_nodes
        dist[self.source] = 0
        heap = [(0, self.source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            cols, weights = g.out_edges(u)
            for v, w in zip(cols.tolist(), weights.tolist()):
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        return bool(np.array_equal(np.array(dist), self.dist))


@register_workload
class BfsPull(_GraphWorkload):
    """Bottom-up BFS: each unvisited node scans in-edges for a visited
    parent — an indirect reduction (logical OR) per node."""

    name = "bfs_pull"
    addr_label = "Ind."
    cmp_label = "Reduce"
    paper_params = "Kronecker graph, bottom-up"
    requirement = (AddrPattern.INDIRECT, ComputeKind.REDUCE)

    def _build_phases(self) -> List[Phase]:
        g = self._make_graph()
        n = g.num_nodes
        unvis_r = self.space.allocate("unvis", n, U32)
        offsin_r = self.space.allocate("offs_in", n + 1, U32)
        colin_r = self.space.allocate("col_in", max(g.num_edges, 1), U32)
        parent2_r = self.space.allocate("parent2", n, U32)

        source = int(np.argmax(np.diff(g.out_offsets)))
        parent = np.full(n, -1, dtype=np.int64)
        parent[source] = source
        scan_nodes: List[int] = []
        scan_edges: List[int] = []
        scan_parents: List[int] = []
        levels = 0
        changed = True
        while changed:
            changed = False
            levels += 1
            was_visited = parent >= 0
            for v in range(n):
                if was_visited[v]:
                    continue
                lo, hi = int(g.in_offsets[v]), int(g.in_offsets[v + 1])
                if lo == hi:
                    continue
                scan_nodes.append(v)
                for e in range(lo, hi):
                    u = int(g.in_col[e])
                    scan_edges.append(e)
                    scan_parents.append(u)
                    if was_visited[u]:
                        parent[v] = u
                        changed = True
                        break
            if levels > n:  # pragma: no cover - safety
                break
        self.parent = parent
        self.source = source

        n_scans = len(scan_nodes)
        avg_scan = max(len(scan_edges) / max(n_scans, 1), 1.0)
        traces = {
            "unvis_ld": StreamTraceData(
                "unvis_ld", unvis_r.element_vaddr(
                    np.arange(max(n_scans, 1)) % n),
                is_write=False, element_bytes=U32),
            "offs_in_ind_ld": StreamTraceData(
                "offs_in_ind_ld",
                offsin_r.element_vaddr(np.array(scan_nodes, dtype=np.int64)
                                       if scan_nodes else np.zeros(1)),
                is_write=False, element_bytes=U32, affine_fraction=0.0),
            "col_in_ld": StreamTraceData(
                "col_in_ld",
                colin_r.element_vaddr(np.array(scan_edges, dtype=np.int64)
                                      if scan_edges else np.zeros(1)),
                is_write=False, element_bytes=U32, affine_fraction=0.7),
            "parent2_ind_ld": StreamTraceData(
                "parent2_ind_ld",
                parent2_r.element_vaddr(np.array(scan_parents,
                                                 dtype=np.int64)
                                        if scan_parents else np.zeros(1)),
                is_write=False, element_bytes=U32, affine_fraction=0.0),
        }
        kernel = Kernel(
            name="bfs_pull",
            loops=(Loop("i", max(n_scans, 1)),
                   Loop("j", None, expected_trip=avg_scan)),
            body=(
                Load("v", AffineAccess("unvis", (("i", 1),)), bytes=U32,
                     level=0),
                Load("off", IndirectAccess("offs_in", "v"), bytes=U32,
                     level=0),
                Load("u", AffineAccess("col_in", (("j", 1),),
                                       base_var="off"), bytes=U32),
                Load("pu", IndirectAccess("parent2", "u"), bytes=U32),
                BinOp("m", "is_visited", ("pu",), ops=1, latency=1, bytes=1),
                Reduce("found", "or", "m", associative=True, bytes=1),
            ),
            element_bytes={"unvis": U32, "offs_in": U32, "col_in": U32,
                           "parent2": U32},
        )
        return [Phase(kernel=kernel, traces=traces, invocations=1,
                      barriers=levels)]

    def verify(self) -> bool:
        """Pull-BFS reaches exactly the nodes reachable via in-edge scans."""
        g = self.graph
        n = g.num_nodes
        ref = np.full(n, -1, dtype=np.int64)
        ref[self.source] = self.source
        changed = True
        while changed:
            changed = False
            was = ref >= 0
            for v in range(n):
                if was[v]:
                    continue
                for u in g.in_edges(v).tolist():
                    if was[u]:
                        ref[v] = u
                        changed = True
                        break
        return bool(np.array_equal(ref >= 0, self.parent >= 0))


@register_workload
class PrPull(_GraphWorkload):
    """Pull-style PageRank: indirect sum reduction over in-neighbors'
    contributions, then an affine store of the new score."""

    name = "pr_pull"
    addr_label = "Ind."
    cmp_label = "Reduce"
    paper_params = "Kronecker graph, damping 0.85"
    requirement = (AddrPattern.INDIRECT, ComputeKind.REDUCE)

    ITERS = 2
    DAMPING = 0.85

    def _build_phases(self) -> List[Phase]:
        g = self._make_graph()
        n = g.num_nodes
        offsin_r = self.space.allocate("offs_in", n + 1, U32)
        colin_r = self.space.allocate("col_in", max(g.num_edges, 1), U32)
        contrib_r = self.space.allocate("contrib", n, F32)
        scores_r = self.space.allocate("scores_p", n, F32)

        deg = np.maximum(np.diff(g.out_offsets), 1).astype(np.float64)
        scores = np.full(n, 1.0 / n)
        for _ in range(self.ITERS):
            contrib = scores / deg
            sums = np.zeros(n)
            np.add.at(sums, np.repeat(np.arange(n),
                                      np.diff(g.in_offsets)),
                      contrib[g.in_col])
            scores = (1.0 - self.DAMPING) / n + self.DAMPING * sums
        self.scores = scores
        avg_in = max(g.num_edges / n, 1.0)

        traces = {
            "offs_in_ld": StreamTraceData(
                "offs_in_ld", offsin_r.element_vaddr(np.arange(n)),
                is_write=False, element_bytes=U32),
            "col_in_ld": StreamTraceData(
                "col_in_ld",
                colin_r.element_vaddr(np.arange(g.num_edges)),
                is_write=False, element_bytes=U32, affine_fraction=1.0),
            "contrib_ind_ld": StreamTraceData(
                "contrib_ind_ld", contrib_r.element_vaddr(g.in_col),
                is_write=False, element_bytes=F32, affine_fraction=0.0),
            "scores_p_st": StreamTraceData(
                "scores_p_st", scores_r.element_vaddr(np.arange(n)),
                is_write=True, element_bytes=F32),
        }
        kernel = Kernel(
            name="pr_pull",
            loops=(Loop("v", n), Loop("j", None, expected_trip=avg_in)),
            body=(
                Load("off", AffineAccess("offs_in", (("v", 1),)), bytes=U32,
                     level=0),
                Load("u", AffineAccess("col_in", (("j", 1),),
                                       base_var="off"), bytes=U32),
                Load("c", IndirectAccess("contrib", "u"), bytes=F32),
                Reduce("sum", "add", "c", associative=True, bytes=F32),
                BinOp("ns", "fma", ("sum",), ops=2, latency=8, bytes=F32,
                      level=0),
                Store(AffineAccess("scores_p", (("v", 1),)), "ns",
                      bytes=F32, level=0),
            ),
            element_bytes={"offs_in": U32, "col_in": U32, "contrib": F32,
                           "scores_p": F32},
        )
        return [Phase(kernel=kernel, traces=traces, invocations=self.ITERS)]

    def verify(self) -> bool:
        g = self.graph
        n = g.num_nodes
        deg = np.maximum(np.diff(g.out_offsets), 1).astype(np.float64)
        scores = np.full(n, 1.0 / n)
        for _ in range(self.ITERS):
            contrib = scores / deg
            sums = np.zeros(n)
            for v in range(n):
                for u in g.in_edges(v).tolist():
                    sums[v] += contrib[u]
            scores = (1.0 - self.DAMPING) / n + self.DAMPING * sums
        return bool(np.allclose(scores, self.scores, rtol=1e-8))
