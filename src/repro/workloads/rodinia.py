"""Rodinia-style regular workloads: pathfinder, srad, hotspot, hotspot3D.

All four are multi-operand affine-store kernels (Table VI "MO. Store"):
several affine load streams feed a vectorized computation whose result goes
to an affine store stream — the Fig 2(b) pattern where operands are forwarded
to the bank of the final store.

Grids are stored padded so boundary accesses stay inside the allocated
region (the usual halo layout); functional execution is vectorized numpy,
verified against explicit-loop references on a subgrid in :meth:`verify`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.compiler.ir import (
    AffineAccess,
    BinOp,
    Kernel,
    Load,
    Loop,
    Store,
)
from repro.isa.pattern import ComputeKind
from repro.offload.modes import AddrPattern
from repro.workloads.base import (
    Phase,
    StreamTraceData,
    Workload,
    register_workload,
)

F32 = 4
LANES = 16  # AVX-512 fp32 lanes


def _grid_vaddrs(base: int, row_stride_elems: int, rows: int, cols: int,
                 offset_elems: int, element_bytes: int) -> np.ndarray:
    """Element vaddrs of a row-major 2-D sweep with a constant offset."""
    t = np.arange(rows, dtype=np.int64)[:, None]
    i = np.arange(cols, dtype=np.int64)[None, :]
    idx = t * row_stride_elems + i + offset_elems
    return (base + idx * element_bytes).ravel()


@register_workload
class Pathfinder(Workload):
    """Dynamic-programming grid traversal (Rodinia pathfinder).

    ``result[t][i] = wall[t][i] + min(result[t-1][i-1..i+1])``. One kernel
    sweeps all rows; three loads on the previous result row plus the wall
    load feed the store stream.
    """

    name = "pathfinder"
    addr_label = "MO."
    cmp_label = "Store"
    paper_params = "1.5M entries, 8 iters"
    requirement = (AddrPattern.MULTI_OP, ComputeKind.STORE)

    PAPER_COLS = 1_500_000
    ROWS = 8

    def _build_phases(self) -> List[Phase]:
        # The column floor keeps per-core row slices above the scaled-cache
        # floors (see _Stencil2D._setup_grid).
        cols = self.scaled(self.PAPER_COLS, minimum=32768)
        rows = self.ROWS
        pitch = cols + 2
        rng = np.random.default_rng(self.seed)
        self.wall = rng.integers(1, 10, size=(rows, cols)).astype(np.float32)

        wall_r = self.space.allocate("wall", rows * cols, F32)
        res_r = self.space.allocate("result", rows * pitch, F32)

        # Functional execution (vectorized DP).
        big = np.float32(1e18)
        result = np.full((rows, pitch), big, dtype=np.float32)
        result[0, 1:cols + 1] = self.wall[0]
        for t in range(1, rows):
            prev = result[t - 1]
            best = np.minimum(np.minimum(prev[0:cols], prev[1:cols + 1]),
                              prev[2:cols + 2])
            result[t, 1:cols + 1] = self.wall[t] + best
        self.result = result
        self.cols, self.rows, self.pitch = cols, rows, pitch

        sweep_rows = rows - 1
        traces: Dict[str, StreamTraceData] = {}
        for name, off in (("resL_ld", 0), ("resC_ld", 1), ("resR_ld", 2)):
            traces[name] = StreamTraceData(
                stream_name=name, vaddrs=_grid_vaddrs(
                    res_r.vbase, pitch, sweep_rows, cols, off, F32),
                is_write=False, element_bytes=F32)
        traces["wall_ld"] = StreamTraceData(
            "wall_ld", _grid_vaddrs(wall_r.vbase, cols, sweep_rows, cols,
                                    cols, F32),
            is_write=False, element_bytes=F32)
        traces["result_st"] = StreamTraceData(
            "result_st", _grid_vaddrs(res_r.vbase, pitch, sweep_rows, cols,
                                      pitch + 1, F32),
            is_write=True, element_bytes=F32)

        # Distinct virtual regions for the three offset loads share the
        # "result" array; the IR uses pseudo-regions resL/resC/resR mapped to
        # the same element size so each becomes its own stream.
        kernel = Kernel(
            name="pathfinder",
            loops=(Loop("t", sweep_rows), Loop("i", self.cols)),
            body=(
                Load("l", AffineAccess("resL", (("t", pitch), ("i", 1)), 0),
                     bytes=F32),
                Load("c", AffineAccess("resC", (("t", pitch), ("i", 1)), 1),
                     bytes=F32),
                Load("r", AffineAccess("resR", (("t", pitch), ("i", 1)), 2),
                     bytes=F32),
                Load("w", AffineAccess("wall", (("t", cols), ("i", 1)), cols),
                     bytes=F32),
                BinOp("m1", "min", ("l", "c"), simd=True, bytes=F32),
                BinOp("m2", "min", ("m1", "r"), simd=True, bytes=F32),
                BinOp("sum", "add", ("w", "m2"), simd=True, bytes=F32),
                Store(AffineAccess("result",
                                   (("t", pitch), ("i", 1)), pitch + 1),
                      "sum", bytes=F32),
            ),
            element_bytes={"resL": F32, "resC": F32, "resR": F32,
                           "wall": F32, "result": F32},
            vector_lanes=LANES,
        )
        return [Phase(kernel=kernel, traces=traces, invocations=1)]

    def verify(self) -> bool:
        """Explicit-loop DP over the first rows, compared element-wise."""
        cols = min(self.cols, 512)
        ref = np.full((self.rows, cols + 2), np.float32(1e18),
                      dtype=np.float32)
        ref[0, 1:cols + 1] = self.wall[0, :cols]
        for t in range(1, self.rows):
            for i in range(1, cols + 1):
                # Stay clear of the truncated right boundary.
                if i == cols:
                    continue
                best = min(ref[t - 1, i - 1], ref[t - 1, i], ref[t - 1, i + 1])
                ref[t, i] = self.wall[t, i - 1] + best
        got = self.result[:, :cols + 2]
        mask = ref < 1e17
        # The truncated reference lacks the columns right of ``cols``; the
        # DP's min() pulls boundary effects one column left per row, so
        # exclude a 2*rows margin from the comparison.
        mask[:, cols - 2 * self.rows:] = False
        return bool(np.allclose(got[mask], ref[mask], rtol=1e-5))


class _Stencil2D(Workload):
    """Shared machinery for srad and hotspot (5-point 2-D stencils)."""

    PAPER_ROWS = 1024
    PAPER_COLS = 2048
    SWEEPS = 8
    EXTRA_REGION = ""          # optional extra per-point input (e.g. power)

    def _setup_grid(self) -> None:
        # Shrink columns twice as hard as rows: the per-core slice shrinks
        # by `scale` (capacity vs L2 preserved) while the row window - which
        # really shrinks as sqrt(scale) - stays well under the scaled L2.
        # Minimum dimensions keep the per-core slice above the scaled-cache
        # floors, so shrinking below ~1/64 saturates instead of flipping the
        # capacity relationship.
        self.grid_rows = max(self.scaled_dim(self.PAPER_ROWS) * 2, 384)
        self.grid_cols = max(self.scaled_dim(self.PAPER_COLS) // 2, 128)
        self.pitch = self.grid_cols + 2

    def _stencil_update(self, c, n, s, e, w, extra):
        raise NotImplementedError

    def _stencil_body(self) -> Tuple:
        raise NotImplementedError

    def _ops_count(self) -> int:
        raise NotImplementedError

    def _build_phases(self) -> List[Phase]:
        self._setup_grid()
        rows, cols, pitch = self.grid_rows, self.grid_cols, self.pitch
        rng = np.random.default_rng(self.seed)
        grid = rng.random(((rows + 2) * pitch,)).astype(np.float32)
        self.input_grid = grid.copy()
        extra = rng.random(((rows + 2) * pitch,)).astype(np.float32) \
            if self.EXTRA_REGION else None
        self.extra = extra

        in_r = self.space.allocate("gin", (rows + 2) * pitch, F32)
        out_r = self.space.allocate("gout", (rows + 2) * pitch, F32)
        if self.EXTRA_REGION:
            extra_r = self.space.allocate(self.EXTRA_REGION,
                                          (rows + 2) * pitch, F32)

        # Functional sweeps (ping-pong).
        cur = grid.reshape(rows + 2, pitch).copy()
        for _ in range(self.SWEEPS):
            c = cur[1:rows + 1, 1:cols + 1]
            n = cur[0:rows, 1:cols + 1]
            s = cur[2:rows + 2, 1:cols + 1]
            w = cur[1:rows + 1, 0:cols]
            e = cur[1:rows + 1, 2:cols + 2]
            x = (extra.reshape(rows + 2, pitch)[1:rows + 1, 1:cols + 1]
                 if extra is not None else None)
            nxt = cur.copy()
            nxt[1:rows + 1, 1:cols + 1] = self._stencil_update(c, n, s, e, w, x)
            cur = nxt
        self.result = cur

        def grid_trace(region_base: int, offset: int) -> np.ndarray:
            return _grid_vaddrs(region_base, pitch, rows, cols, offset, F32)

        center = pitch + 1
        offs = {"gC_ld": center, "gN_ld": 1, "gS_ld": 2 * pitch + 1,
                "gW_ld": pitch, "gE_ld": pitch + 2}
        traces = {
            name: StreamTraceData(name, grid_trace(in_r.vbase, off),
                                  is_write=False, element_bytes=F32)
            for name, off in offs.items()
        }
        traces["gout_st"] = StreamTraceData(
            "gout_st", grid_trace(out_r.vbase, center), is_write=True,
            element_bytes=F32)
        if self.EXTRA_REGION:
            traces[f"{self.EXTRA_REGION}_ld"] = StreamTraceData(
                f"{self.EXTRA_REGION}_ld", grid_trace(extra_r.vbase, center),
                is_write=False, element_bytes=F32)

        kernel = Kernel(
            name=self.name,
            loops=(Loop("r", rows), Loop("i", cols)),
            body=self._stencil_body(),
            element_bytes={"gC": F32, "gN": F32, "gS": F32, "gW": F32,
                           "gE": F32, "gout": F32,
                           **({self.EXTRA_REGION: F32}
                              if self.EXTRA_REGION else {})},
            vector_lanes=LANES,
        )
        return [Phase(kernel=kernel, traces=traces, invocations=self.SWEEPS)]

    def _loads(self) -> Tuple:
        pitch = self.pitch
        center = pitch + 1
        return (
            Load("c", AffineAccess("gC", (("r", pitch), ("i", 1)), center),
                 bytes=F32),
            Load("n", AffineAccess("gN", (("r", pitch), ("i", 1)), 1),
                 bytes=F32),
            Load("s", AffineAccess("gS", (("r", pitch), ("i", 1)),
                                   2 * pitch + 1), bytes=F32),
            Load("w", AffineAccess("gW", (("r", pitch), ("i", 1)), pitch),
                 bytes=F32),
            Load("e", AffineAccess("gE", (("r", pitch), ("i", 1)), pitch + 2),
                 bytes=F32),
        )

    def verify(self) -> bool:
        """One explicit-loop sweep on a corner subgrid vs the first sweep."""
        rows = min(self.grid_rows, 16)
        cols = min(self.grid_cols, 16)
        pitch = self.pitch
        grid = self.input_grid.reshape(self.grid_rows + 2, pitch)
        extra = (self.extra.reshape(self.grid_rows + 2, pitch)
                 if self.extra is not None else None)
        for r in range(1, rows + 1):
            for i in range(1, cols + 1):
                c = grid[r, i]
                n, s = grid[r - 1, i], grid[r + 1, i]
                w, e = grid[r, i - 1], grid[r, i + 1]
                x = extra[r, i] if extra is not None else None
                want = self._stencil_update(
                    np.float32(c), np.float32(n), np.float32(s),
                    np.float32(e), np.float32(w), x)
                got = self._first_sweep_value(r, i)
                if not np.isclose(want, got, rtol=1e-4):
                    return False
        return True

    def _first_sweep_value(self, r: int, i: int) -> float:
        # Recompute the first sweep vectorized (cheap) and index it.
        rows, cols, pitch = self.grid_rows, self.grid_cols, self.pitch
        cur = self.input_grid.reshape(rows + 2, pitch)
        c = cur[1:rows + 1, 1:cols + 1]
        n = cur[0:rows, 1:cols + 1]
        s = cur[2:rows + 2, 1:cols + 1]
        w = cur[1:rows + 1, 0:cols]
        e = cur[1:rows + 1, 2:cols + 2]
        x = (self.extra.reshape(rows + 2, pitch)[1:rows + 1, 1:cols + 1]
             if self.extra is not None else None)
        out = self._stencil_update(c, n, s, e, w, x)
        return float(out[r - 1, i - 1])


@register_workload
class Srad(_Stencil2D):
    """Speckle-reducing anisotropic diffusion (Rodinia srad), simplified to
    its memory/compute shape: 5-point stencil, heavy fp arithmetic."""

    name = "srad"
    addr_label = "MO."
    cmp_label = "Store"
    paper_params = "1k x 2k, 8 iters"
    requirement = (AddrPattern.MULTI_OP, ComputeKind.STORE)

    PAPER_ROWS = 1024
    PAPER_COLS = 2048
    LAMBDA = np.float32(0.5)
    EPS = np.float32(1e-6)

    def _stencil_update(self, c, n, s, e, w, extra):
        d = (n + s + e + w) - 4.0 * c
        q = (d * d) / (c * c + self.EPS)
        coef = 1.0 / (1.0 + q)
        return (c + 0.25 * self.LAMBDA * d * coef).astype(np.float32)

    def _stencil_body(self) -> Tuple:
        return self._loads() + (
            BinOp("nsum", "add4", ("n", "s", "w", "e"), ops=3, latency=3,
                  simd=True, bytes=F32),
            BinOp("d", "sub4c", ("nsum", "c"), ops=2, latency=2, simd=True,
                  bytes=F32),
            BinOp("q", "ratio", ("d", "c"), ops=4, latency=6, simd=True,
                  bytes=F32),
            BinOp("coef", "recip1p", ("q",), ops=2, latency=6, simd=True,
                  bytes=F32),
            BinOp("upd", "fma", ("c", "d", "coef"), ops=3, latency=4,
                  simd=True, bytes=F32),
            Store(AffineAccess("gout", (("r", self.pitch), ("i", 1)),
                               self.pitch + 1), "upd", bytes=F32),
        )


@register_workload
class Hotspot(_Stencil2D):
    """Thermal simulation (Rodinia hotspot): 5-point stencil + power input."""

    name = "hotspot"
    addr_label = "MO."
    cmp_label = "Store"
    paper_params = "2k x 1k, 8 iters"
    requirement = (AddrPattern.MULTI_OP, ComputeKind.STORE)

    PAPER_ROWS = 2048
    PAPER_COLS = 1024
    EXTRA_REGION = "power"
    CAP = np.float32(0.5)
    RX = np.float32(0.2)
    RY = np.float32(0.3)
    RZ = np.float32(0.1)
    AMB = np.float32(80.0)

    def _stencil_update(self, c, n, s, e, w, extra):
        delta = self.CAP * (extra + (n + s - 2.0 * c) * self.RY
                            + (e + w - 2.0 * c) * self.RX
                            + (self.AMB - c) * self.RZ)
        return (c + delta).astype(np.float32)

    def _stencil_body(self) -> Tuple:
        pitch = self.pitch
        return self._loads() + (
            Load("p", AffineAccess("power", (("r", pitch), ("i", 1)),
                                   pitch + 1), bytes=F32),
            BinOp("vy", "axis_y", ("n", "s", "c"), ops=3, latency=3,
                  simd=True, bytes=F32),
            BinOp("vx", "axis_x", ("e", "w", "c"), ops=3, latency=3,
                  simd=True, bytes=F32),
            BinOp("vz", "axis_z", ("c",), ops=2, latency=2, simd=True,
                  bytes=F32),
            BinOp("delta", "mix", ("p", "vy", "vx", "vz"), ops=4, latency=4,
                  simd=True, bytes=F32),
            BinOp("upd", "add", ("c", "delta"), ops=1, latency=1, simd=True,
                  bytes=F32),
            Store(AffineAccess("gout", (("r", pitch), ("i", 1)), pitch + 1),
                  "upd", bytes=F32),
        )


@register_workload
class Hotspot3D(Workload):
    """3-D thermal stencil (Rodinia hotspot3D): 7-point + power, the workload
    that needs the ISA's 8 stream inputs and 3-D affine patterns."""

    name = "hotspot3D"
    addr_label = "MO."
    cmp_label = "Store"
    paper_params = "256 x 1k x 8, 8 iters"
    requirement = (AddrPattern.MULTI_OP, ComputeKind.STORE)

    PAPER_X = 1024
    PAPER_Y = 256
    LAYERS = 8
    SWEEPS = 8
    COEF = np.float32(0.125)

    def _build_phases(self) -> List[Phase]:
        nx = self.scaled_dim(self.PAPER_X, minimum=128)
        ny = self.scaled_dim(self.PAPER_Y, minimum=48)
        nz = self.LAYERS
        px, py, pz = nx + 2, ny + 2, nz + 2
        rng = np.random.default_rng(self.seed)
        grid = rng.random((pz * py * px,)).astype(np.float32)
        power = rng.random((pz * py * px,)).astype(np.float32)
        self.input_grid, self.power = grid.copy(), power
        self.dims = (nx, ny, nz)
        self.pads = (px, py, pz)

        in_r = self.space.allocate("t_in", pz * py * px, F32)
        out_r = self.space.allocate("t_out", pz * py * px, F32)
        pow_r = self.space.allocate("power3d", pz * py * px, F32)

        cur = grid.reshape(pz, py, px).copy()
        for _ in range(self.SWEEPS):
            c = cur[1:nz+1, 1:ny+1, 1:nx+1]
            xm = cur[1:nz+1, 1:ny+1, 0:nx]
            xp = cur[1:nz+1, 1:ny+1, 2:nx+2]
            ym = cur[1:nz+1, 0:ny, 1:nx+1]
            yp = cur[1:nz+1, 2:ny+2, 1:nx+1]
            zm = cur[0:nz, 1:ny+1, 1:nx+1]
            zp = cur[2:nz+2, 1:ny+1, 1:nx+1]
            p = power.reshape(pz, py, px)[1:nz+1, 1:ny+1, 1:nx+1]
            nxt = cur.copy()
            nxt[1:nz+1, 1:ny+1, 1:nx+1] = self._update(c, xm, xp, ym, yp,
                                                       zm, zp, p)
            cur = nxt
        self.result = cur

        def trace(base: int, dz: int, dy: int, dx: int) -> np.ndarray:
            z = np.arange(1, nz + 1, dtype=np.int64)[:, None, None]
            y = np.arange(1, ny + 1, dtype=np.int64)[None, :, None]
            x = np.arange(1, nx + 1, dtype=np.int64)[None, None, :]
            idx = (z + dz) * py * px + (y + dy) * px + (x + dx)
            return (base + idx * F32).ravel()

        neighbor_offsets = {
            "tC_ld": (0, 0, 0), "tXm_ld": (0, 0, -1), "tXp_ld": (0, 0, 1),
            "tYm_ld": (0, -1, 0), "tYp_ld": (0, 1, 0),
            "tZm_ld": (-1, 0, 0), "tZp_ld": (1, 0, 0),
        }
        traces = {
            name: StreamTraceData(name, trace(in_r.vbase, *off),
                                  is_write=False, element_bytes=F32)
            for name, off in neighbor_offsets.items()
        }
        traces["power3d_ld"] = StreamTraceData(
            "power3d_ld", trace(pow_r.vbase, 0, 0, 0), is_write=False,
            element_bytes=F32)
        traces["t_out_st"] = StreamTraceData(
            "t_out_st", trace(out_r.vbase, 0, 0, 0), is_write=True,
            element_bytes=F32)

        def acc(region: str, dz: int, dy: int, dx: int) -> AffineAccess:
            off = (1 + dz) * py * px + (1 + dy) * px + (1 + dx)
            return AffineAccess(region, (("z", py * px), ("y", px), ("x", 1)),
                                off)

        kernel = Kernel(
            name="hotspot3D",
            loops=(Loop("z", nz), Loop("y", ny), Loop("x", nx)),
            body=(
                Load("c", acc("tC", 0, 0, 0), bytes=F32),
                Load("xm", acc("tXm", 0, 0, -1), bytes=F32),
                Load("xp", acc("tXp", 0, 0, 1), bytes=F32),
                Load("ym", acc("tYm", 0, -1, 0), bytes=F32),
                Load("yp", acc("tYp", 0, 1, 0), bytes=F32),
                Load("zm", acc("tZm", -1, 0, 0), bytes=F32),
                Load("zp", acc("tZp", 1, 0, 0), bytes=F32),
                Load("p", acc("power3d", 0, 0, 0), bytes=F32),
                BinOp("nsum", "add6", ("xm", "xp", "ym", "yp", "zm", "zp"),
                      ops=5, latency=5, simd=True, bytes=F32),
                BinOp("lap", "sub6c", ("nsum", "c"), ops=2, latency=2,
                      simd=True, bytes=F32),
                BinOp("upd", "fma_p", ("c", "lap", "p"), ops=3, latency=4,
                      simd=True, bytes=F32),
                Store(acc("t_out", 0, 0, 0), "upd", bytes=F32),
            ),
            element_bytes={"tC": F32, "tXm": F32, "tXp": F32, "tYm": F32,
                           "tYp": F32, "tZm": F32, "tZp": F32,
                           "power3d": F32, "t_out": F32},
            vector_lanes=LANES,
        )
        return [Phase(kernel=kernel, traces=traces, invocations=self.SWEEPS)]

    def _update(self, c, xm, xp, ym, yp, zm, zp, p):
        lap = (xm + xp + ym + yp + zm + zp) - 6.0 * c
        return (c + self.COEF * lap + 0.1 * p).astype(np.float32)

    def verify(self) -> bool:
        nx, ny, nz = self.dims
        px, py, pz = self.pads
        grid = self.input_grid.reshape(pz, py, px)
        power = self.power.reshape(pz, py, px)
        checked = 0
        for z in range(1, min(nz, 4) + 1):
            for y in range(1, min(ny, 6) + 1):
                for x in range(1, min(nx, 6) + 1):
                    lap = (grid[z, y, x-1] + grid[z, y, x+1]
                           + grid[z, y-1, x] + grid[z, y+1, x]
                           + grid[z-1, y, x] + grid[z+1, y, x]
                           - 6.0 * grid[z, y, x])
                    want = grid[z, y, x] + self.COEF * lap \
                        + np.float32(0.1) * power[z, y, x]
                    got = self._first_sweep()[z, y, x]
                    if not np.isclose(want, got, rtol=1e-4):
                        return False
                    checked += 1
        return checked > 0

    def _first_sweep(self):
        if not hasattr(self, "_fs_cache"):
            nx, ny, nz = self.dims
            px, py, pz = self.pads
            cur = self.input_grid.reshape(pz, py, px)
            c = cur[1:nz+1, 1:ny+1, 1:nx+1]
            xm = cur[1:nz+1, 1:ny+1, 0:nx]
            xp = cur[1:nz+1, 1:ny+1, 2:nx+2]
            ym = cur[1:nz+1, 0:ny, 1:nx+1]
            yp = cur[1:nz+1, 2:ny+2, 1:nx+1]
            zm = cur[0:nz, 1:ny+1, 1:nx+1]
            zp = cur[2:nz+2, 1:ny+1, 1:nx+1]
            p = self.power.reshape(pz, py, px)[1:nz+1, 1:ny+1, 1:nx+1]
            out = cur.copy()
            out[1:nz+1, 1:ny+1, 1:nx+1] = self._update(c, xm, xp, ym, yp,
                                                       zm, zp, p)
            self._fs_cache = out
        return self._fs_cache
