"""The 14 evaluated workloads (Table VI).

Rodinia (regular/affine): pathfinder, srad, hotspot, hotspot3D.
Data mining: histogram, scluster (streamcluster), svm.
GAP graph suite (irregular): bfs_push, pr_push, sssp, bfs_pull, pr_pull.
Pointer chasing: bin_tree, hash_join.

Each workload generates real input data (including Kronecker graphs per the
paper's A/B/C = 0.57/0.19/0.19 parameters), executes functionally in numpy
(results are verified against independent references in the tests), and
emits the exact per-stream address traces the simulator's cache/NoC models
consume. ``scale`` shrinks the paper's input sizes (default 1/64) so runs
complete in seconds; the benchmark harness reports the scale used.
"""

from repro.workloads.base import (
    DEFAULT_SCALE,
    Phase,
    StreamTraceData,
    Workload,
    all_workload_names,
    make_workload,
    register_workload,
    workload_requirements,
)
from repro.workloads import datamining, graph, micro, pointer, \
    rodinia  # noqa: F401

__all__ = [
    "Workload",
    "Phase",
    "StreamTraceData",
    "DEFAULT_SCALE",
    "make_workload",
    "register_workload",
    "all_workload_names",
    "workload_requirements",
]
