"""Workload infrastructure: traces, phases, the registry, Table VI metadata."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Type

import numpy as np

from repro.compiler.ir import Kernel
from repro.isa.pattern import ComputeKind
from repro.mem.address import AddressSpace
from repro.offload.modes import AddrPattern

# Default shrink factor versus the paper's input sizes.
DEFAULT_SCALE = 1.0 / 64.0


@dataclass
class StreamTraceData:
    """The realized access sequence of one stream over a whole kernel run.

    ``vaddrs`` are element (not line) virtual addresses in stream-step order.
    ``modifies`` (atomic streams) records whether each operation changed the
    stored value — measured by the functional execution, not estimated.
    ``chain_lengths`` (pointer-chase streams) gives per-traversal lengths so
    the timing model can charge serial chain latency per traversal.
    """

    stream_name: str
    vaddrs: np.ndarray
    is_write: bool
    element_bytes: int
    affine_fraction: float = 1.0
    modifies: Optional[np.ndarray] = None
    chain_lengths: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.vaddrs = np.asarray(self.vaddrs, dtype=np.int64)
        if self.modifies is not None:
            self.modifies = np.asarray(self.modifies, dtype=bool)
            if len(self.modifies) != len(self.vaddrs):
                raise ValueError(f"{self.stream_name}: modifies length "
                                 f"mismatch")

    @property
    def steps(self) -> int:
        return len(self.vaddrs)

    def slice_for(self, core: int, n_cores: int) -> slice:
        """OpenMP-static contiguous partition of the stream's steps."""
        if not 0 <= core < n_cores:
            raise ValueError(f"core {core} out of range")
        per_core = self.steps // n_cores
        extra = self.steps % n_cores
        start = core * per_core + min(core, extra)
        length = per_core + (1 if core < extra else 0)
        return slice(start, start + length)


@dataclass
class Phase:
    """One kernel invocation pattern: IR + traces + repeat count.

    ``invocations`` repeats the kernel (traces describe ONE invocation);
    a barrier separates invocations (the OpenMP parallel-for join).
    """

    kernel: Kernel
    traces: Dict[str, StreamTraceData]
    invocations: int = 1
    serial_chain_latency_hint: float = 0.0   # per-step latency of ptr chains
    # Input shrink factor vs the paper's sizes; stamped by Workload.build so
    # the offload policy can reason about paper-scale footprints.
    data_scale: float = 1.0
    # Global synchronization points during the phase (OpenMP joins); defaults
    # to one per invocation. BFS-style kernels set this to their level count.
    barriers: Optional[int] = None

    @property
    def barrier_count(self) -> int:
        return self.barriers if self.barriers is not None else self.invocations

    def trace_for(self, stream_name: str) -> StreamTraceData:
        if stream_name not in self.traces:
            raise KeyError(
                f"phase {self.kernel.name!r} has no trace for stream "
                f"{stream_name!r}; traces: {sorted(self.traces)}")
        return self.traces[stream_name]


class Workload(abc.ABC):
    """Base class: build data, run functionally, emit kernels and traces."""

    name: str = ""
    addr_label: str = ""       # Table VI "Addr." column, e.g. "Ind."
    cmp_label: str = ""        # Table VI "Cmp" column, e.g. "Atomic"
    paper_params: str = ""     # Table VI "Parameters" column
    requirement: Tuple[AddrPattern, ComputeKind] = (
        AddrPattern.AFFINE, ComputeKind.LOAD)

    def __init__(self, scale: float = DEFAULT_SCALE, seed: int = 42) -> None:
        if scale <= 0 or scale > 1:
            raise ValueError("scale must be in (0, 1]")
        self.scale = scale
        self.seed = seed
        self.space: Optional[AddressSpace] = None
        self._phases: Optional[List[Phase]] = None

    # ------------------------------------------------------------------
    def build(self, space: AddressSpace) -> None:
        """Allocate regions, generate inputs, run functionally, build traces."""
        self.space = space
        self._phases = self._build_phases()
        for phase in self._phases:
            phase.data_scale = self.scale

    @abc.abstractmethod
    def _build_phases(self) -> List[Phase]:
        """Subclass hook: requires ``self.space``."""

    def phases(self) -> List[Phase]:
        if self._phases is None:
            raise RuntimeError(f"{self.name}: call build() first")
        return self._phases

    @abc.abstractmethod
    def verify(self) -> bool:
        """Check the functional result against an independent reference."""

    # ------------------------------------------------------------------
    def scaled(self, paper_count: int, minimum: int = 16) -> int:
        """A paper-sized input count shrunk by ``scale``."""
        return max(int(round(paper_count * self.scale)), minimum)

    def scaled_dim(self, paper_dim: int, minimum: int = 8) -> int:
        """A 2-D dimension shrunk by sqrt(scale) (area scales by ``scale``)."""
        return max(int(round(paper_dim * self.scale ** 0.5)), minimum)

    @property
    def total_iterations(self) -> float:
        return sum(p.kernel.total_iterations * p.invocations
                   for p in self.phases())


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[Workload]] = {}


def register_workload(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding a workload to the global registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate workload {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def make_workload(name: str, scale: float = DEFAULT_SCALE,
                  seed: int = 42) -> Workload:
    """Instantiate a registered workload (build() is still the caller's)."""
    if name not in _REGISTRY:
        import difflib
        close = difflib.get_close_matches(name, _REGISTRY, n=3, cutoff=0.5)
        if close:
            hint = "did you mean " + " or ".join(repr(c) for c in close) + "?"
        else:
            hint = f"known: {sorted(_REGISTRY)}"
        raise KeyError(f"unknown workload {name!r}; {hint}")
    return _REGISTRY[name](scale=scale, seed=seed)


def all_workload_names() -> List[str]:
    """Table VI order."""
    order = ["pathfinder", "srad", "hotspot", "hotspot3D", "histogram",
             "scluster", "svm", "bfs_push", "pr_push", "sssp",
             "bfs_pull", "pr_pull", "bin_tree", "hash_join"]
    return [n for n in order if n in _REGISTRY]


def workload_requirements() -> Dict[str, Tuple[AddrPattern, ComputeKind]]:
    """Per-workload primary (address, compute) requirement (Table I/VI)."""
    return {name: _REGISTRY[name].requirement for name in all_workload_names()}
